"""Tests for the observability layer: tracing, metrics, probes, reports."""

import json

import numpy as np
import pytest

from repro.obs import (NULL_TRACER, FLOW_RTT, PKT_DELIVER, PKT_DROP,
                       PKT_ENQUEUE, ROUTE_CHANGE, ROUTING_COMPUTE, WARNING,
                       Counter, Gauge, Histogram, MetricsRegistry,
                       NullTracer, RingBufferTracer, SimulatorProbe,
                       TimeSeriesLog, TraceEvent, TraceFilter,
                       isl_utilization_from_registry)
from repro.simulation.devices import DeviceStats
from repro.simulation.packet import Packet
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.udp import UdpFlow


class TestTraceEvent:
    def test_as_dict_omits_sentinels(self):
        event = TraceEvent(1.5, PKT_DROP, link="isl-1-2", reason="queue")
        record = event.as_dict()
        assert record == {"t": 1.5, "kind": PKT_DROP, "link": "isl-1-2",
                          "reason": "queue"}

    def test_as_dict_full(self):
        event = TraceEvent(0.0, FLOW_RTT, node=3, flow=7, link="gsl-3",
                           seq=12, value=0.05, reason="owd")
        assert set(event.as_dict()) == {"t", "kind", "node", "flow", "link",
                                        "seq", "value", "reason"}


class TestTraceFilter:
    def test_kind_filter(self):
        f = TraceFilter(kinds={PKT_DROP})
        assert f.accepts(PKT_DROP, -1, "")
        assert not f.accepts(PKT_ENQUEUE, -1, "")

    def test_flow_filter_ignores_unscoped(self):
        f = TraceFilter(flows={7})
        assert f.accepts(PKT_DROP, 7, "")
        assert not f.accepts(PKT_DROP, 8, "")
        # Events without a flow id pass a flow filter.
        assert f.accepts(ROUTE_CHANGE, -1, "")

    def test_link_filter(self):
        f = TraceFilter(links={"isl-0-1"})
        assert f.accepts(PKT_ENQUEUE, -1, "isl-0-1")
        assert not f.accepts(PKT_ENQUEUE, -1, "isl-9-9")
        assert f.accepts(ROUTING_COMPUTE, -1, "")


class TestNullTracer:
    def test_disabled_and_noop(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(0.0, PKT_DROP, reason="queue")  # must not raise


class TestRingBufferTracer:
    def test_retains_and_counts(self):
        tracer = RingBufferTracer(capacity=10)
        assert tracer.enabled
        tracer.emit(0.0, PKT_ENQUEUE, link="isl-0-1")
        tracer.emit(0.1, PKT_DROP, link="isl-0-1", reason="queue")
        assert len(tracer) == 2
        assert tracer.counts == {PKT_ENQUEUE: 1, PKT_DROP: 1}
        assert [e.kind for e in tracer.events_of(PKT_DROP)] == [PKT_DROP]

    def test_eviction_bounded(self):
        tracer = RingBufferTracer(capacity=4)
        for i in range(10):
            tracer.emit(float(i), PKT_ENQUEUE, seq=i)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.evicted == 6
        assert [e.seq for e in tracer.events] == [6, 7, 8, 9]

    def test_filter_applied(self):
        tracer = RingBufferTracer(
            trace_filter=TraceFilter(kinds={PKT_DROP}))
        tracer.emit(0.0, PKT_ENQUEUE)
        tracer.emit(0.0, PKT_DROP, reason="queue")
        assert len(tracer) == 1
        assert tracer.emitted == 2

    def test_jsonl_round_trip(self, tmp_path):
        tracer = RingBufferTracer()
        tracer.emit(1.0, PKT_DELIVER, node=5, flow=2, seq=9)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(str(path)) == 1
        record = json.loads(path.read_text().strip())
        assert record == {"t": 1.0, "kind": PKT_DELIVER, "node": 5,
                          "flow": 2, "seq": 9}

    def test_summary_shape(self):
        tracer = RingBufferTracer(capacity=2)
        for _ in range(3):
            tracer.emit(0.0, WARNING, reason="x")
        summary = tracer.summary()
        assert summary["emitted"] == 3
        assert summary["retained"] == 2
        assert summary["evicted"] == 1
        assert summary["by_kind"] == {WARNING: 3}

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferTracer(capacity=0)


class TestMetrics:
    def test_counter(self):
        counter = Counter("drops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_histogram(self):
        hist = Histogram("rtt", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(5.55 / 3)
        assert hist.quantile(0.0) <= 0.1
        data = hist.as_dict()
        assert data["count"] == 3

    def test_histogram_exact_small_sample_quantiles(self):
        # Under EXACT_QUANTILE_SAMPLES observations, quantiles are exact
        # nearest-rank over the raw samples, not bucket upper bounds.
        hist = Histogram("rtt", buckets=(10.0, 100.0))
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.exact
        assert hist.quantile(0.5) == 3.0
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 5.0
        assert hist.quantile(0.99) == 5.0

    def test_histogram_as_dict_sum_count_and_quantiles(self):
        hist = Histogram("rtt", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            hist.observe(value)
        data = hist.as_dict()
        assert data["count"] == 3
        assert data["sum"] == pytest.approx(22.5)
        assert data["exact_quantiles"] is True
        assert data["p50"] == 2.0
        assert data["p99"] == 20.0

    def test_histogram_falls_back_past_sample_cap(self):
        from repro.obs.metrics import EXACT_QUANTILE_SAMPLES

        hist = Histogram("rtt", buckets=(1000.0, 10_000.0))
        for value in range(EXACT_QUANTILE_SAMPLES + 1):
            hist.observe(float(value))
        assert not hist.exact
        # Bucket-resolution fallback: the quantile lands on a bound.
        assert hist.quantile(0.5) == 1000.0
        assert hist.as_dict()["exact_quantiles"] is False

    def test_histogram_empty_quantiles_none_in_dict(self):
        hist = Histogram("rtt", buckets=(1.0,))
        data = hist.as_dict()
        assert data["count"] == 0
        assert data["p50"] is None
        assert data["p99"] is None

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.series("s") is registry.series("s")
        with pytest.raises(TypeError):
            registry.gauge("a")  # name already bound to a counter

    def test_registry_series_names(self):
        registry = MetricsRegistry()
        registry.series("link.isl-0-1.utilization")
        registry.series("link.isl-0-1.queue_depth")
        registry.series("scheduler.events_per_s")
        names = registry.series_names(prefix="link.",
                                      suffix=".utilization")
        assert names == ["link.isl-0-1.utilization"]
        assert registry.has_series("scheduler.events_per_s")

    def test_registry_json_export(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.series("s").append(0.0, 1.0)
        path = tmp_path / "metrics.json"
        registry.to_json(str(path))
        data = json.loads(path.read_text())
        assert data["counters"]["c"] == 1
        assert data["series"]["s"]["values"] == [1.0]

    def test_timeserieslog_reexported_from_transport(self):
        # Back-compat: the class moved from repro.transport to repro.obs.
        from repro.transport import TimeSeriesLog as TransportLog
        from repro.transport.base import TimeSeriesLog as BaseLog
        assert TransportLog is TimeSeriesLog
        assert BaseLog is TimeSeriesLog

    def test_timeserieslog_as_dict(self):
        log = TimeSeriesLog()
        log.append(0.0, 1.0)
        log.append(1.0, 2.0)
        assert log.as_dict() == {"times_s": [0.0, 1.0],
                                 "values": [1.0, 2.0]}


class TestUtilizationAccounting:
    def test_raw_ratio_not_clamped(self):
        stats = DeviceStats()
        stats.busy_time_s = 2.0
        assert stats.utilization(1e6, 1.0) == pytest.approx(2.0)

    def test_overload_emits_warning(self):
        stats = DeviceStats()
        stats.busy_time_s = 1.5
        tracer = RingBufferTracer()
        ratio = stats.utilization(1e6, 1.0, tracer=tracer,
                                  link_name="isl-0-1")
        assert ratio == pytest.approx(1.5)
        warnings = tracer.events_of(WARNING)
        assert len(warnings) == 1
        assert warnings[0].link == "isl-0-1"
        assert warnings[0].reason == "utilization_above_1"

    def test_no_warning_below_1(self):
        stats = DeviceStats()
        stats.busy_time_s = 0.5
        tracer = RingBufferTracer()
        stats.utilization(1e6, 1.0, tracer=tracer, link_name="isl-0-1")
        assert tracer.events_of(WARNING) == []


class TestTracedSimulation:
    def test_run_produces_trace_and_series(self, small_network, tmp_path):
        """The acceptance scenario: one traced run yields a JSONL trace
        plus sampled queue-depth/utilization series."""
        tracer = RingBufferTracer()
        sim = PacketSimulator(small_network, tracer=tracer)
        registry = MetricsRegistry()
        sim.attach_probe(registry=registry, interval_s=0.5)
        UdpFlow(0, 3, rate_bps=2_000_000.0).install(sim)
        sim.run(2.0)

        counts = tracer.counts
        assert counts[PKT_ENQUEUE] > 0
        assert counts[PKT_DELIVER] > 0
        assert counts[ROUTING_COMPUTE] > 0
        path = tmp_path / "run.jsonl"
        lines = tracer.to_jsonl(str(path))
        assert lines == len(tracer)
        for line in path.read_text().splitlines()[:10]:
            json.loads(line)

        util = registry.series_names(prefix="link.", suffix=".utilization")
        depth = registry.series_names(prefix="link.", suffix=".queue_depth")
        assert util and depth
        assert registry.has_series("scheduler.events_per_s")
        series = registry.series_logs[util[0]]
        assert len(series) >= 3  # sampled at 0.5, 1.0, 1.5, (2.0)

    def test_flow_rtt_events_match_flow_log(self, small_network):
        from repro.transport.ping import PingSession
        tracer = RingBufferTracer()
        sim = PacketSimulator(small_network, tracer=tracer)
        ping = PingSession(0, 3, interval_s=0.1).install(sim)
        sim.run(1.0)
        traced = [e.value for e in tracer.events_of(FLOW_RTT)]
        answered = ping.answered()[1]
        assert len(traced) == len(answered)
        np.testing.assert_allclose(traced, answered)

    def test_probe_unknown_link_rejected(self, small_network):
        sim = PacketSimulator(small_network)
        with pytest.raises(ValueError):
            SimulatorProbe(sim, links=["no-such-device"])

    def test_probe_bad_interval_rejected(self, small_network):
        sim = PacketSimulator(small_network)
        with pytest.raises(ValueError):
            SimulatorProbe(sim, interval_s=0.0)

    def test_isl_utilization_from_registry(self):
        registry = MetricsRegistry()
        registry.series("link.isl-3-17.utilization").append(1.0, 0.25)
        registry.series("link.isl-3-17.utilization").append(2.0, 0.75)
        registry.series("link.gsl-9.utilization").append(1.0, 0.5)
        assert isl_utilization_from_registry(registry) == {(3, 17): 0.75}
        assert isl_utilization_from_registry(registry, time_s=1.5) == {
            (3, 17): 0.25}
        assert isl_utilization_from_registry(registry, time_s=0.5) == {}

    def test_utilization_map_from_registry(self, small_network,
                                           small_constellation):
        tracer = RingBufferTracer()
        sim = PacketSimulator(small_network, tracer=tracer)
        registry = MetricsRegistry()
        sim.attach_probe(registry=registry, interval_s=0.5)
        UdpFlow(0, 3, rate_bps=5_000_000.0).install(sim)
        sim.run(2.0)
        from repro.viz.utilization_map import utilization_map_from_registry
        segments = utilization_map_from_registry(
            small_constellation, registry, time_s=2.0)
        assert segments  # the flow crossed at least one ISL
        assert all(0.0 < seg.utilization for seg in segments)


class TestRunReports:
    def test_packet_report(self, small_network):
        tracer = RingBufferTracer()
        sim = PacketSimulator(small_network, tracer=tracer)
        registry = MetricsRegistry()
        sim.attach_probe(registry=registry)
        UdpFlow(0, 3, rate_bps=1_000_000.0).install(sim)
        sim.run(1.0)
        report = sim.report(registry=registry)
        assert report.kind == "packet"
        assert report.summary["packets_delivered"] > 0
        assert report.summary["events_per_wall_s"] > 0.0
        assert report.trace is not None and report.trace["emitted"] > 0
        assert report.metrics is not None
        payload = report.as_dict()
        json.dumps(payload)  # must be JSON-serializable
        assert payload["report_version"] == 1
        assert "packet" in report.describe()

    def test_fluid_reports_unified(self, small_network):
        from repro.fluid.aimd import AimdFluidSimulation
        from repro.fluid.engine import FluidFlow, FluidSimulation
        flows = [FluidFlow(0, 3), FluidFlow(1, 4)]
        for cls, kind in ((FluidSimulation, "fluid.maxmin"),
                          (AimdFluidSimulation, "fluid.aimd")):
            registry = MetricsRegistry()
            result = cls(small_network, flows,
                         metrics=registry).run(3.0, step_s=1.0)
            report = result.report(registry=registry)
            assert report.kind == kind
            assert report.summary["wall_time_s"] > 0.0
            assert report.summary["snapshots"] == 3.0  # t = 0, 1, 2
            assert registry.has_series("fluid.peak_utilization")
            json.dumps(report.as_dict())

    def test_report_json_export(self, small_network, tmp_path):
        sim = PacketSimulator(small_network)
        sim.run(0.2)
        path = tmp_path / "report.json"
        sim.report().to_json(str(path))
        data = json.loads(path.read_text())
        assert data["kind"] == "packet"
        assert "trace" not in data  # NullTracer: no trace section


class TestDropReasonPartition:
    def test_drop_reasons_partition_total(self, small_network):
        """Under a congested two-flow scenario every drop lands in exactly
        one reason counter, the counters sum to ``packets_dropped``, and
        the traced drop events agree reason-by-reason."""
        tracer = RingBufferTracer(capacity=100_000)
        sim = PacketSimulator(
            small_network,
            LinkConfig(gsl_rate_bps=500_000.0, gsl_queue_packets=4),
            tracer=tracer)
        # Two UDP flows into the same destination GS, each alone over the
        # GSL capacity: sustained queue drops at the bottleneck.
        UdpFlow(0, 3, rate_bps=2_000_000.0).install(sim)
        UdpFlow(1, 3, rate_bps=2_000_000.0).install(sim)
        # Plus one packet to a registered destination with a flow id
        # nobody listens for: a no-handler drop.
        sim.scheduler.schedule_at(0.0, lambda: sim.send(
            Packet(999, sim.gs_node_id(4), sim.gs_node_id(3),
                   size_bytes=100)))
        sim.run(2.0)

        stats = sim.stats
        assert stats.packets_dropped_queue > 0
        assert stats.packets_dropped_no_handler == 1
        assert stats.packets_dropped == (
            stats.packets_dropped_queue
            + stats.packets_dropped_no_route
            + stats.packets_dropped_ttl
            + stats.packets_dropped_no_handler)

        by_reason = {}
        for event in tracer.events_of(PKT_DROP):
            by_reason[event.reason] = by_reason.get(event.reason, 0) + 1
        assert by_reason.get("queue", 0) == stats.packets_dropped_queue
        assert by_reason.get("no_handler", 0) == \
            stats.packets_dropped_no_handler
        assert sum(by_reason.values()) == stats.packets_dropped

        # Per-device accounting: device-level drops are queue drops.
        device_drops = sum(device.stats.packets_dropped
                           for device in sim.iter_devices())
        assert device_drops == stats.packets_dropped_queue
