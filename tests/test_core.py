"""Tests for the Hypatia facade and workload builders."""

import numpy as np
import pytest

from repro import Hypatia, PAPER_FOCUS_PAIRS, random_permutation_pairs
from repro.core.workloads import gid_by_name, pairs_by_name
from repro.fluid.engine import FluidFlow
from repro.topology.gsl import GslPolicy
from repro.ground.stations import relay_grid_between
from repro.geo.coordinates import GeodeticPosition


class TestWorkloads:
    def test_permutation_is_derangement(self):
        pairs = random_permutation_pairs(100, seed=42)
        assert len(pairs) == 100
        sources = [s for s, _ in pairs]
        destinations = [d for _, d in pairs]
        assert sorted(sources) == list(range(100))
        assert sorted(destinations) == list(range(100))
        assert all(s != d for s, d in pairs)

    def test_permutation_deterministic(self):
        assert random_permutation_pairs(50, seed=7) == \
            random_permutation_pairs(50, seed=7)

    def test_permutation_seed_sensitivity(self):
        assert random_permutation_pairs(50, seed=1) != \
            random_permutation_pairs(50, seed=2)

    def test_permutation_validation(self):
        with pytest.raises(ValueError):
            random_permutation_pairs(1)

    def test_focus_pairs_resolvable(self):
        from repro.ground.stations import ground_stations_from_cities
        stations = ground_stations_from_cities(count=100)
        pairs = pairs_by_name(stations, list(PAPER_FOCUS_PAIRS.values()))
        assert len(pairs) == len(PAPER_FOCUS_PAIRS)
        for src, dst in pairs:
            assert 0 <= src < 100 and 0 <= dst < 100

    def test_gid_by_name_unknown(self):
        from repro.ground.stations import ground_stations_from_cities
        with pytest.raises(KeyError):
            gid_by_name(ground_stations_from_cities(count=5), "Gotham")


class TestHypatiaFacade:
    def test_from_shell_name_defaults(self):
        hypatia = Hypatia.from_shell_name("K1", num_cities=20)
        assert hypatia.network.min_elevation_deg == 30.0
        assert hypatia.constellation.num_satellites == 34 * 34
        assert len(hypatia.ground_stations) == 20

    def test_operator_default_elevations(self):
        assert Hypatia.from_shell_name(
            "T1", num_cities=5).network.min_elevation_deg == 10.0
        assert Hypatia.from_shell_name(
            "S1", num_cities=5).network.min_elevation_deg == 25.0

    def test_elevation_override(self):
        hypatia = Hypatia.from_shell_name("K1", num_cities=5,
                                          min_elevation_deg=35.0)
        assert hypatia.network.min_elevation_deg == 35.0

    def test_pair_lookup(self):
        hypatia = Hypatia.from_shell_name("K1", num_cities=100)
        src, dst = hypatia.pair("Manila", "Dalian")
        assert hypatia.ground_stations[src].name == "Manila"
        assert hypatia.ground_stations[dst].name == "Dalian"

    def test_bent_pipe_mode_has_no_isls(self):
        hypatia = Hypatia.from_shell_name("K1", num_cities=5,
                                          use_isls=False)
        assert len(hypatia.network.isl_pairs) == 0

    def test_extra_stations_get_consecutive_gids(self):
        relays = relay_grid_between(GeodeticPosition(48.86, 2.35),
                                    GeodeticPosition(55.76, 37.62),
                                    rows=2, columns=2)
        hypatia = Hypatia.from_shell_name("K1", num_cities=10,
                                          extra_stations=relays)
        assert len(hypatia.ground_stations) == 14
        assert [s.gid for s in hypatia.ground_stations] == list(range(14))
        assert sum(s.is_relay for s in hypatia.ground_stations) == 4

    def test_compute_timelines(self):
        hypatia = Hypatia.from_shell_name("K1", num_cities=100)
        pair = hypatia.pair("Manila", "Dalian")
        timelines = hypatia.compute_timelines([pair], duration_s=3.0,
                                              step_s=1.0)
        tl = timelines[pair]
        assert len(tl.times_s) == 3
        assert np.isfinite(tl.rtts_s).all()
        # Paper Fig. 3(b): Manila-Dalian RTT is in the 25-48 ms band.
        assert (tl.rtts_s > 0.020).all()
        assert (tl.rtts_s < 0.060).all()

    def test_build_packet_simulator(self):
        hypatia = Hypatia.from_shell_name("K1", num_cities=10)
        sim = hypatia.build_packet_simulator()
        assert sim.network is hypatia.network

    def test_build_fluid_modes(self):
        hypatia = Hypatia.from_shell_name("K1", num_cities=10)
        flows = [FluidFlow(0, 5)]
        from repro.fluid.aimd import AimdFluidSimulation
        from repro.fluid.engine import FluidSimulation
        assert isinstance(hypatia.build_fluid_simulation(flows),
                          AimdFluidSimulation)
        assert isinstance(
            hypatia.build_fluid_simulation(flows, mode="maxmin"),
            FluidSimulation)
        with pytest.raises(ValueError):
            hypatia.build_fluid_simulation(flows, mode="quantum")

    def test_gsl_policy_passthrough(self):
        hypatia = Hypatia.from_shell_name(
            "K1", num_cities=5, gsl_policy=GslPolicy.NEAREST_ONLY)
        snap = hypatia.snapshot(0.0)
        for edges in snap.gsl_edges.values():
            assert len(edges.satellite_ids) <= 1


class TestEpochOffset:
    def test_offset_is_pure_time_shift(self):
        base = Hypatia.from_shell_name("K1", num_cities=5)
        shifted = Hypatia.from_shell_name("K1", num_cities=5,
                                          epoch_offset_s=50.0)
        p_base = base.constellation.positions_ecef_m(50.0)
        p_shift = shifted.constellation.positions_ecef_m(0.0)
        np.testing.assert_allclose(p_base, p_shift, atol=1e-6)

    def test_position_service_honors_offset(self):
        from repro.simulation.positions import PositionService
        base = Hypatia.from_shell_name("K1", num_cities=5)
        shifted = Hypatia.from_shell_name("K1", num_cities=5,
                                          epoch_offset_s=30.0)
        service_base = PositionService(base.network, quantum_s=0.0)
        service_shift = PositionService(shifted.network, quantum_s=0.0)
        np.testing.assert_allclose(service_base.position_m(7, 30.0),
                                   service_shift.position_m(7, 0.0),
                                   atol=1e-6)
