"""The live-service determinism contract (`repro.service`).

The backbone guarantee: a simulation checkpointed at an epoch boundary,
restored (in this or any process), and advanced to the horizon produces
stats, reports, and per-flow FCT arrays bit-identical to one that never
stopped — across the packet engine and both max-min fluid kernels.
Plus the compatibility guards (format version, spec hash), RNG stream
survival through mid-fault-window checkpoints, sweep warm-starts, live
mutation equivalence, and the JSON-over-TCP server.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import random
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constellations.builder import Constellation
from repro.faults import FaultEvent, FaultSchedule
from repro.faults.injector import LinkFaultInjector
from repro.fluid.engine import FluidSimulation
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.orbits.shell import Shell
from repro.service import (CHECKPOINT_FORMAT_VERSION, Checkpoint,
                           CheckpointError, CheckpointSpecError,
                           CheckpointVersionError, LiveSimulationService,
                           ServiceClient, ServiceClientError, ServiceError,
                           ServiceServer, load_checkpoint,
                           read_checkpoint_header, resume_sweep,
                           save_checkpoint, spec_fingerprint,
                           sweep_with_checkpoint)
from repro.sweep.engine import sweep_timelines
from repro.sweep.spec import NetworkSpec
from repro.topology.network import LeoNetwork
from repro.traffic import (FlowArrivalProcess, FlowRequest, TrafficMatrix,
                           WorkloadSchedule)

pytestmark = pytest.mark.service

HORIZON_S = 12.0
EPOCH_S = 1.0

_SITES = [
    ("Quito", 0.0, -78.5),
    ("Nairobi", -1.3, 36.8),
    ("Singapore", 1.35, 103.8),
    ("Honolulu", 21.3, -157.9),
    ("Sydney", -33.9, 151.2),
    ("Madrid", 40.4, -3.7),
]


def _small_spec(faults=None) -> NetworkSpec:
    """An 8x8 +Grid shell with six ground stations, as a spec."""
    shell = Shell(name="X1", num_orbits=8, satellites_per_orbit=8,
                  altitude_m=600_000.0, inclination_deg=53.0)
    stations = [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(_SITES)
    ]
    network = LeoNetwork(Constellation([shell]), stations,
                         min_elevation_deg=10.0, faults=faults)
    return NetworkSpec.from_network(network)


def _small_workload(seed: int = 11, start_s: float = 0.0,
                    horizon_s: float = HORIZON_S) -> WorkloadSchedule:
    """~24 finite flows spread over most of the horizon."""
    rng = random.Random(seed)
    requests = []
    for _ in range(24):
        src, dst = rng.sample(range(len(_SITES)), 2)
        requests.append(FlowRequest(
            t_start_s=start_s + rng.uniform(0.0, horizon_s * 0.7),
            src_gid=src, dst_gid=dst,
            size_bytes=rng.randint(20_000, 120_000)))
    return WorkloadSchedule(requests, seed=seed)


def _make_service(engine: str, kernel: str = "vectorized",
                  faults=None, workload=None) -> LiveSimulationService:
    spec = _small_spec(faults=faults)
    spec = spec.with_workload(_small_workload()
                              if workload is None else workload)
    return LiveSimulationService(spec, engine=engine, kernel=kernel,
                                 horizon_s=HORIZON_S, epoch_s=EPOCH_S)


def _report_json(service: LiveSimulationService) -> str:
    """The canonical parity form: the deterministic report, serialized."""
    return json.dumps(service.report().as_dict(deterministic=True),
                      sort_keys=True)


#: Demand-driven routing *work* accounting.  Mid-run installs compute
#: their destination trees at install time instead of inside a refresh
#: batch, so live-mutation equivalence is stated over everything else
#: (outcomes stay bit-identical; see the driver's module docstring).
_ROUTING_WORK_KEYS = frozenset([
    "trees_computed", "dijkstra_calls", "transit_builds",
    "transit_cache_hits", "csr_rebuilds_avoided",
])


def _outcome_json(service: LiveSimulationService) -> str:
    """`_report_json` minus the routing-work counters."""
    payload = service.report().as_dict(deterministic=True)
    summary = payload.get("summary")
    if isinstance(summary, dict):
        for key in _ROUTING_WORK_KEYS:
            summary.pop(key, None)
    return json.dumps(payload, sort_keys=True)


def _round_trip(service: LiveSimulationService, path) -> LiveSimulationService:
    service.save(str(path))
    return LiveSimulationService.resume(str(path))


ENGINES = [("packet", "vectorized"), ("fluid", "reference"),
           ("fluid", "vectorized")]


# ----------------------------------------------------------------------
# Checkpoint container + compatibility guards
# ----------------------------------------------------------------------

class TestCheckpointContainer:
    def test_header_round_trip(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "c.ckpt"
        ckpt = Checkpoint(spec=spec, engine="packet", time_s=3.5,
                          payload={"x": np.arange(4)},
                          meta={"note": "hello"})
        header = save_checkpoint(str(path), ckpt)
        assert header["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert header["spec_hash"] == spec_fingerprint(spec)
        assert header["time_s"] == 3.5
        assert header["meta"] == {"note": "hello"}
        # Header reads back without unpickling anything.
        assert read_checkpoint_header(str(path)) == header
        loaded = load_checkpoint(str(path))
        assert loaded.engine == "packet"
        assert np.array_equal(loaded.payload["x"], np.arange(4))
        assert spec_fingerprint(loaded.spec) == spec_fingerprint(spec)

    def test_rejects_non_checkpoint_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint_header(str(path))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_version_mismatch_fails_clearly(self, tmp_path):
        path = tmp_path / "future.ckpt"
        ckpt = Checkpoint(spec=_small_spec(), engine="packet", time_s=0.0,
                          payload={},
                          format_version=CHECKPOINT_FORMAT_VERSION + 1)
        save_checkpoint(str(path), ckpt)
        with pytest.raises(CheckpointVersionError,
                           match="does not match this build"):
            load_checkpoint(str(path))
        # The header itself stays readable for forensics.
        header = read_checkpoint_header(str(path))
        assert header["format_version"] == CHECKPOINT_FORMAT_VERSION + 1

    def test_spec_mismatch_fails_clearly(self, tmp_path):
        path = tmp_path / "spec.ckpt"
        spec = _small_spec()
        save_checkpoint(str(path), Checkpoint(
            spec=spec, engine="packet", time_s=0.0, payload={}))
        other = spec.with_workload(_small_workload(seed=99))
        with pytest.raises(CheckpointSpecError,
                           match="different network spec"):
            load_checkpoint(str(path), expected_spec=other)
        # The matching spec passes the same gate.
        load_checkpoint(str(path), expected_spec=spec)

    def test_spec_fingerprint_is_content_hash(self):
        assert spec_fingerprint(_small_spec()) == \
            spec_fingerprint(_small_spec())
        with_faults = _small_spec(faults=FaultSchedule(
            [FaultEvent.satellite_outage(3, 2.0, 5.0)], seed=1))
        assert spec_fingerprint(with_faults) != \
            spec_fingerprint(_small_spec())


# ----------------------------------------------------------------------
# Checkpoint -> restore -> continue is bit-identical
# ----------------------------------------------------------------------

class TestRoundTripDeterminism:
    @pytest.mark.parametrize("engine,kernel", ENGINES)
    def test_epoch_boundary_round_trip(self, engine, kernel, tmp_path):
        baseline = _make_service(engine, kernel)
        baseline.run_to_horizon()

        interrupted = _make_service(engine, kernel)
        interrupted.advance_epoch(5)
        restored = _round_trip(interrupted, tmp_path / "mid.ckpt")
        assert restored.clock_s == 5.0
        restored.run_to_horizon()

        assert _report_json(restored) == _report_json(baseline)
        assert np.array_equal(restored.fct_values(),
                              baseline.fct_values(), equal_nan=True)

    def test_double_restore_same_file(self, tmp_path):
        """One checkpoint file seeds any number of identical futures."""
        service = _make_service("packet")
        service.advance_epoch(4)
        service.save(str(tmp_path / "c.ckpt"))
        futures = []
        for _ in range(2):
            restored = LiveSimulationService.resume(str(tmp_path / "c.ckpt"))
            restored.run_to_horizon()
            futures.append(_report_json(restored))
        assert futures[0] == futures[1]

    def test_resume_checks_spec(self, tmp_path):
        service = _make_service("packet")
        service.save(str(tmp_path / "c.ckpt"))
        other = _small_spec().with_workload(_small_workload(seed=99))
        with pytest.raises(CheckpointSpecError):
            LiveSimulationService.resume(str(tmp_path / "c.ckpt"),
                                         expected_spec=other)

    def test_aimd_engine_rejected(self):
        with pytest.raises(ServiceError, match="AIMD"):
            LiveSimulationService(
                _small_spec().with_workload(_small_workload()),
                engine="aimd", horizon_s=HORIZON_S)

    def test_fluid_report_needs_horizon(self):
        service = _make_service("fluid")
        service.advance_epoch(2)
        with pytest.raises(ServiceError, match="horizon"):
            service.report()


@st.composite
def _boundary_scenario(draw):
    engine, kernel = draw(st.sampled_from(ENGINES))
    epoch = draw(st.integers(min_value=1,
                             max_value=int(HORIZON_S / EPOCH_S) - 1))
    return engine, kernel, epoch


_BASELINES: dict = {}


def _baseline_outputs(engine: str, kernel: str):
    key = (engine, kernel)
    if key not in _BASELINES:
        service = _make_service(engine, kernel)
        service.run_to_horizon()
        _BASELINES[key] = (_report_json(service), service.fct_values())
    return _BASELINES[key]


class TestRandomBoundaryProperty:
    @given(_boundary_scenario())
    @settings(max_examples=10, deadline=None)
    def test_round_trip_at_any_event_boundary(self, scenario):
        engine, kernel, epoch = scenario
        expected_report, expected_fct = _baseline_outputs(engine, kernel)
        service = _make_service(engine, kernel)
        service.advance_epoch(epoch)
        # In-memory pickle round trip == file round trip (same bytes
        # path), without hypothesis needing a per-example tmp dir.
        blob = pickle.dumps(service.checkpoint())
        restored = LiveSimulationService.from_checkpoint(
            pickle.loads(blob))
        restored.run_to_horizon()
        assert _report_json(restored) == expected_report
        assert np.array_equal(restored.fct_values(), expected_fct,
                              equal_nan=True)


# ----------------------------------------------------------------------
# RNG stream positions survive mid-window checkpoints
# ----------------------------------------------------------------------

class TestRngStreamSurvival:
    def test_injector_stream_position_survives_pickle(self):
        event = FaultEvent.packet_loss(0.0, 1_000.0, 0.3, isl=(3, 4))
        injector = LinkFaultInjector("isl-3-4", [event], seed=7)
        for i in range(137):  # mid-window: stream position 137
            injector.drop_reason(float(i % 900))
        clone = pickle.loads(pickle.dumps(injector))
        tail = [injector.drop_reason(float(i)) for i in range(200)]
        clone_tail = [clone.drop_reason(float(i)) for i in range(200)]
        assert tail == clone_tail

    def test_injector_extend_keeps_draw_sequence(self):
        """Injecting a future window == having baked it in from t=0."""
        e1 = FaultEvent.packet_loss(0.0, 50.0, 0.4, isl=(3, 4))
        e2 = FaultEvent.packet_loss(80.0, 90.0, 0.9, isl=(3, 4))
        live = LinkFaultInjector("isl-3-4", [e1], seed=7)
        baked = LinkFaultInjector("isl-3-4", [e1, e2], seed=7)
        draws_live = [live.drop_reason(t / 10.0) for t in range(300)]
        draws_baked = [baked.drop_reason(t / 10.0) for t in range(300)]
        assert draws_live == draws_baked  # e2 not active yet
        live.extend([e2], now_s=60.0)
        after_live = [live.drop_reason(80.0 + t / 100.0)
                      for t in range(300)]
        after_baked = [baked.drop_reason(80.0 + t / 100.0)
                       for t in range(300)]
        assert after_live == after_baked

    def test_injector_extend_rejects_past_windows(self):
        injector = LinkFaultInjector("isl-0-1", [], seed=0)
        with pytest.raises(ValueError, match="future windows"):
            injector.extend(
                [FaultEvent.packet_loss(5.0, 9.0, 0.5, isl=(0, 1))],
                now_s=7.0)

    def test_arrival_stream_position_survives_pickle(self):
        demand = np.zeros((4, 4))
        demand[0, 1] = demand[2, 3] = demand[1, 2] = 400_000.0
        process = FlowArrivalProcess(TrafficMatrix(demand),
                                     mean_size_bytes=50_000.0, seed=5)
        whole = process.generate(40.0).requests

        stream = process.stream()
        head = stream.take_until(13.0)
        stream = pickle.loads(pickle.dumps(stream))  # mid-stream cut
        tail = stream.take_until(40.0)
        assert tuple(head) + tuple(tail) == \
            tuple(r for r in whole if r.t_start_s < 40.0)

    def test_mid_fault_window_checkpoint_round_trip(self, tmp_path):
        """The satellite regression: checkpoint inside an active
        stochastic-loss window; neither the loss RNG nor packet
        outcomes rewind or skip."""
        events = [FaultEvent.packet_loss(2.0, 10.0, 0.2, gid=1),
                  FaultEvent.packet_loss(3.0, 9.0, 0.15, isl=(10, 11))]
        faults = FaultSchedule(events, seed=13)
        baseline = _make_service("packet", faults=faults)
        baseline.run_to_horizon()

        interrupted = _make_service("packet", faults=faults)
        interrupted.advance_epoch(5)  # t=5: both windows are open
        restored = _round_trip(interrupted, tmp_path / "midfault.ckpt")
        restored.run_to_horizon()
        assert _report_json(restored) == _report_json(baseline)
        assert np.array_equal(restored.fct_values(),
                              baseline.fct_values(), equal_nan=True)

    def test_mid_arrival_stream_checkpoint_round_trip(self, tmp_path):
        """Arrival-process RNG cursors ride inside the checkpoint."""
        demand = np.zeros((len(_SITES), len(_SITES)))
        demand[0, 2] = demand[3, 4] = demand[5, 1] = 300_000.0
        process = FlowArrivalProcess(TrafficMatrix(demand),
                                     mean_size_bytes=40_000.0, seed=21)

        def build():
            service = _make_service("packet")
            service.attach_arrivals(process)
            return service

        baseline = build()
        baseline.run_to_horizon()
        interrupted = build()
        interrupted.advance_epoch(6)
        restored = _round_trip(interrupted, tmp_path / "arrivals.ckpt")
        restored.run_to_horizon()
        assert _report_json(restored) == _report_json(baseline)
        assert np.array_equal(restored.fct_values(),
                              baseline.fct_values(), equal_nan=True)


# ----------------------------------------------------------------------
# Live mutation == baked in from t=0
# ----------------------------------------------------------------------

class TestLiveMutation:
    @pytest.mark.parametrize("engine,kernel",
                             [("packet", "vectorized"),
                              ("fluid", "vectorized")])
    def test_attach_workload_equals_baked(self, engine, kernel):
        extra = _small_workload(seed=31, start_s=4.0, horizon_s=6.0)
        baked = _make_service(
            engine, kernel, workload=_small_workload().merged(extra))
        baked.run_to_horizon()

        live = _make_service(engine, kernel)
        live.advance_epoch(3)  # extra's first start is >= 4.0
        live.attach_workload(extra)
        live.run_to_horizon()
        assert _outcome_json(live) == _outcome_json(baked)

    def test_inject_fault_equals_baked(self):
        events = [FaultEvent.satellite_outage(5, 6.0, 9.0),
                  FaultEvent.packet_loss(7.0, 10.0, 0.25, gid=2)]
        baked = _make_service("packet",
                              faults=FaultSchedule(events, seed=0))
        baked.run_to_horizon()

        live = _make_service("packet")
        live.advance_epoch(4)
        assert live.inject_fault(events) == 2
        live.run_to_horizon()
        assert _outcome_json(live) == _outcome_json(baked)

    def test_mutations_guard_the_past(self):
        service = _make_service("packet")
        service.advance_epoch(5)
        with pytest.raises(ServiceError, match="past"):
            service.inject_fault(
                FaultEvent.satellite_outage(1, 2.0, 8.0))
        late = WorkloadSchedule(
            [FlowRequest(1.0, 0, 1, 10_000)], seed=0)
        with pytest.raises(ServiceError, match="shift_to_now"):
            service.attach_workload(late)
        # shift_to_now re-bases the same schedule onto the future.
        handle = service.attach_workload(late, shift_to_now=True)
        assert service.detach_workload(handle)["handle"] == handle
        with pytest.raises(ServiceError, match="unknown workload handle"):
            service.detach_workload(handle)

    def test_cannot_advance_backwards(self):
        service = _make_service("packet")
        service.advance_epoch(3)
        with pytest.raises(ServiceError, match="backwards"):
            service.advance_to(1.0)

    def test_attach_then_checkpoint_round_trip(self, tmp_path):
        """Mutations compose with the checkpoint contract: mutate,
        checkpoint, restore, finish == mutate and never stop."""
        extra = _small_workload(seed=41, start_s=3.0, horizon_s=5.0)
        baseline = _make_service("packet")
        baseline.advance_epoch(2)
        baseline.attach_workload(extra)
        baseline.run_to_horizon()

        interrupted = _make_service("packet")
        interrupted.advance_epoch(2)
        interrupted.attach_workload(extra)
        interrupted.advance_epoch(4)
        restored = _round_trip(interrupted, tmp_path / "mutated.ckpt")
        restored.run_to_horizon()
        assert _report_json(restored) == _report_json(baseline)


# ----------------------------------------------------------------------
# Sweep warm-start
# ----------------------------------------------------------------------

class TestSweepWarmStart:
    PAIRS = [(0, 1), (2, 3), (4, 5)]
    TIMES = np.arange(0.0, 13.0, 1.0)

    def _full(self, spec):
        return sweep_timelines(spec, self.PAIRS, self.TIMES)

    @pytest.mark.parametrize("workers", [None, 4])
    def test_resumed_sweep_equals_serial_full_pass(self, workers,
                                                   tmp_path):
        spec = _small_spec()
        expected = self._full(spec)
        path = tmp_path / "sweep.ckpt"
        header = sweep_with_checkpoint(spec, self.PAIRS, self.TIMES,
                                       str(path), checkpoint_index=5)
        assert header["engine"] == "sweep"
        resumed = resume_sweep(str(path), workers=workers)
        assert set(resumed) == set(expected)
        for pair in expected:
            assert np.array_equal(resumed[pair].distances_m,
                                  expected[pair].distances_m,
                                  equal_nan=True)
            assert resumed[pair].paths == expected[pair].paths

    def test_sweep_checkpoint_rejects_service_resume(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "sweep.ckpt"
        sweep_with_checkpoint(spec, self.PAIRS, self.TIMES, str(path),
                              checkpoint_index=3)
        with pytest.raises(CheckpointError, match="not a live service"):
            LiveSimulationService.resume(str(path))
        service = _make_service("packet")
        service.save(str(tmp_path / "svc.ckpt"))
        with pytest.raises(CheckpointError, match="not a sweep"):
            resume_sweep(str(tmp_path / "svc.ckpt"))


# ----------------------------------------------------------------------
# The JSON-over-TCP server
# ----------------------------------------------------------------------

class _ServerThread:
    """A ServiceServer on a background event loop, for client tests."""

    def __init__(self, service: LiveSimulationService, pace: float = 0.0):
        self.ready = threading.Event()
        self.port = 0

        def runner() -> None:
            async def main() -> None:
                server = ServiceServer(service, pace=pace)
                await server.start()
                self.port = server.port
                self.ready.set()
                await server.wait_closed()
            asyncio.run(main())

        self.thread = threading.Thread(target=runner, daemon=True)

    def __enter__(self) -> "_ServerThread":
        self.thread.start()
        assert self.ready.wait(timeout=10.0), "server never came up"
        return self

    def __exit__(self, *exc_info) -> None:
        self.thread.join(timeout=10.0)


class TestServerClient:
    def test_command_session(self, tmp_path):
        service = _make_service("packet")
        with _ServerThread(service) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                status = client.status()
                assert status["engine"] == "packet"
                assert status["time_s"] == 0.0
                assert client.advance(3)["time_s"] == 3.0
                header = client.checkpoint(str(tmp_path / "live.ckpt"))
                assert header["time_s"] == 3.0
                metrics = client.metrics()
                assert set(metrics) >= {"counters", "gauges",
                                        "histograms"}
                report = client.report(deterministic=True)
                assert report["kind"] == "packet"
                with pytest.raises(ServiceClientError,
                                   match="unknown command"):
                    client.command("warp")
                with pytest.raises(ServiceClientError,
                                   match="epochs must be"):
                    client.command("advance", epochs=-1)
                assert client.stop()["time_s"] == 3.0
        # The checkpoint written over the wire restores like any other.
        restored = LiveSimulationService.resume(str(tmp_path / "live.ckpt"))
        assert restored.clock_s == 3.0

    def test_live_mutation_over_the_wire(self):
        service = _make_service("packet")
        extra = _small_workload(seed=51, start_s=2.0, horizon_s=4.0)
        with _ServerThread(service) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                client.advance(1)
                handle = client.command(
                    "attach_workload",
                    workload=extra.as_dict())["handle"]
                injected = client.command("inject_fault", events=[
                    FaultEvent.satellite_outage(3, 5.0, 8.0).as_dict(),
                ])["injected"]
                assert injected == 1
                detached = client.command("detach_workload",
                                          handle=handle)
                assert detached["handle"] == handle
                client.command("run_to_horizon")
                assert client.status()["done"]
                client.stop()

    def test_paced_server_advances_by_itself(self):
        service = _make_service("packet")
        with _ServerThread(service, pace=50.0) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                deadline = 30.0
                import time
                start = time.monotonic()
                while (client.status()["time_s"] < 2.0
                       and time.monotonic() - start < deadline):
                    time.sleep(0.05)
                assert client.status()["time_s"] >= 2.0
                client.stop()
