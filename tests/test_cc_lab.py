"""Controller-evaluation lab tests (repro.cc.lab) and the cc-lab CLI."""

import json

import pytest

from repro.cc.lab import (CLASSIC_CONTROLLERS, CcLabReport, LabScenario,
                          build_scenarios, lab_network, run_cell, run_lab)
from repro.cli import main

pytestmark = pytest.mark.cc


@pytest.fixture(scope="module")
def base_spec():
    return lab_network("8x8")


@pytest.fixture(scope="module")
def small_report(base_spec) -> CcLabReport:
    """A 2-scenario x 2-controller matrix, shared by the read-only
    assertions below."""
    scenarios = build_scenarios(base_spec, duration_s=4.0, seed=1,
                                fault_axis=("clean",),
                                weather_axis=("clear",),
                                churn_axis=("light", "heavy"))
    return run_lab(scenarios=scenarios,
                   controllers=("newreno", "bandit"), seed=1)


class TestLabNetwork:
    def test_shell_syntax(self):
        spec = lab_network("6x6")
        assert sum(s.num_orbits * s.satellites_per_orbit
                   for s in spec.shells) == 36
        assert len(spec.ground_stations) == 6

    def test_bad_shell_rejected(self):
        with pytest.raises(ValueError, match="8x8"):
            lab_network("not-a-shell")


class TestScenarioMatrix:
    def test_full_matrix_is_eight_scenarios(self, base_spec):
        scenarios = build_scenarios(base_spec, duration_s=4.0, seed=0)
        assert len(scenarios) == 8
        assert len({s.name for s in scenarios}) == 8
        for scenario in scenarios:
            assert set(scenario.axes_dict) == {"fault", "weather", "churn"}
            assert scenario.spec.workload is not None
            assert scenario.spec.workload.num_flows > 0

    def test_axes_control_impairments(self, base_spec):
        (clean,) = build_scenarios(base_spec, duration_s=4.0, seed=0,
                                   fault_axis=("clean",),
                                   weather_axis=("clear",),
                                   churn_axis=("light",))
        (faulty,) = build_scenarios(base_spec, duration_s=4.0, seed=0,
                                    fault_axis=("faulty",),
                                    weather_axis=("storm",),
                                    churn_axis=("heavy",))
        assert clean.spec.faults is None and clean.spec.weather is None
        assert faulty.spec.faults is not None
        assert faulty.spec.faults.num_events == 3
        assert faulty.spec.weather is not None
        # Heavier churn offers strictly more load at the same seed.
        assert (faulty.spec.workload.offered_bits
                > clean.spec.workload.offered_bits)

    def test_bad_axis_values_rejected(self, base_spec):
        for kwargs in ({"fault_axis": ("broken",)},
                       {"weather_axis": ("hail",)},
                       {"churn_axis": ("medium",)}):
            with pytest.raises(ValueError, match="axis value"):
                build_scenarios(base_spec, duration_s=4.0, **kwargs)

    def test_scenarios_deterministic_per_seed(self, base_spec):
        a = build_scenarios(base_spec, duration_s=4.0, seed=9,
                            fault_axis=("faulty",), weather_axis=("storm",),
                            churn_axis=("light",))[0]
        b = build_scenarios(base_spec, duration_s=4.0, seed=9,
                            fault_axis=("faulty",), weather_axis=("storm",),
                            churn_axis=("light",))[0]
        assert a.spec.workload.as_dict() == b.spec.workload.as_dict()
        assert a.spec.faults == b.spec.faults


class TestRunCell:
    def test_cell_accounting(self, base_spec):
        (scenario,) = build_scenarios(base_spec, duration_s=4.0, seed=2,
                                      fault_axis=("clean",),
                                      weather_axis=("clear",),
                                      churn_axis=("light",))
        cell = run_cell(scenario, "newreno")
        assert cell.scenario == scenario.name
        assert cell.controller == "newreno"
        assert 0 < cell.flows_completed <= cell.flows_offered
        assert 0.0 < cell.delivered_bits <= cell.offered_bits
        assert 0.0 < cell.delivered_fraction <= 1.0
        assert cell.fct_p50_s <= cell.fct_p90_s <= cell.fct_p99_s
        round_trip = json.dumps(cell.as_dict())
        assert "fct_p50_s" in round_trip


class TestLabReport:
    def test_cells_cover_matrix(self, small_report):
        assert len(small_report.cells) == 4
        assert small_report.scenarios == ["clean-clear-light",
                                          "clean-clear-heavy"]
        assert small_report.controllers == ["newreno", "bandit"]

    def test_winners_and_versus_rows(self, small_report):
        winners = small_report.winners()
        assert set(winners) == set(small_report.scenarios)
        assert set(winners.values()) <= {"newreno", "bandit"}
        versus = small_report.learned_vs_best_classic()
        for scenario, row in versus.items():
            assert row["best_classic"] in CLASSIC_CONTROLLERS
            cell = small_report.cell(scenario, "bandit")
            assert row["learned_fct_p50_s"] == cell.fct_p50_s
            assert row["wins"] == (row["learned_fct_p50_s"]
                                   <= row["best_classic_fct_p50_s"])

    def test_report_serializes(self, small_report, tmp_path):
        path = tmp_path / "lab.json"
        small_report.to_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["kind"] == "cc_lab_report"
        assert len(payload["cells"]) == 4
        assert payload["winners"]
        lines = small_report.format_lines()
        assert lines[0].startswith("scenario")
        assert any("best classic" in line for line in lines)

    def test_serial_equals_workers(self, base_spec):
        scenarios = build_scenarios(base_spec, duration_s=4.0, seed=4,
                                    fault_axis=("faulty",),
                                    weather_axis=("clear",),
                                    churn_axis=("light", "heavy"))
        serial = run_lab(scenarios=scenarios,
                         controllers=("newreno", "bandit"), seed=4,
                         workers=1)
        parallel = run_lab(scenarios=scenarios,
                           controllers=("newreno", "bandit"), seed=4,
                           workers=2)
        assert (json.dumps(serial.as_dict(), sort_keys=True)
                == json.dumps(parallel.as_dict(), sort_keys=True))

    def test_axis_overrides_require_built_scenarios(self, small_report):
        with pytest.raises(ValueError, match="axis overrides"):
            run_lab(scenarios=[], fault_axis=("clean",))


class TestCcLabCli:
    def test_cli_smoke(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["cc-lab", "--shell", "8x8", "--duration", "2",
                     "--seed", "1", "--controllers", "newreno,bandit",
                     "-o", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "scenario" in printed and "winner" in printed
        payload = json.loads(out.read_text())
        assert len(payload["cells"]) == 16  # 8 scenarios x 2 controllers

    def test_cli_rejects_unknown_controller(self, capsys):
        assert main(["cc-lab", "--controllers", "warp-drive"]) == 2
        assert "unknown controller" in capsys.readouterr().err

    def test_cli_rejects_bad_shell(self, capsys):
        assert main(["cc-lab", "--shell", "banana"]) == 2
