"""Tests for ping, UDP, and TCP transports over the packet simulator."""

import math

import numpy as np
import pytest

from repro.routing.engine import RoutingEngine
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.base import TimeSeriesLog, allocate_flow_id
from repro.transport.ping import PingSession
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.udp import UdpFlow
from repro.transport.vegas import TcpVegasFlow


@pytest.fixture
def sim(small_network) -> PacketSimulator:
    return PacketSimulator(small_network)


class TestBase:
    def test_flow_ids_unique(self):
        assert allocate_flow_id() != allocate_flow_id()

    def test_time_series_log(self):
        log = TimeSeriesLog()
        log.append(0.0, 1.0)
        log.append(1.0, 2.0)
        times, values = log.as_arrays()
        np.testing.assert_allclose(times, [0.0, 1.0])
        np.testing.assert_allclose(values, [1.0, 2.0])
        assert len(log) == 2

    def test_double_install_rejected(self, sim):
        app = PingSession(0, 3)
        app.install(sim)
        with pytest.raises(RuntimeError):
            app.install(sim)


class TestPing:
    def test_rtts_match_computed(self, small_network):
        engine = RoutingEngine(small_network)
        snap = small_network.snapshot(0.0)
        computed_rtt = engine.pair_rtt_s(snap, 0, 3)
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=1e12,
                                         gsl_rate_bps=1e12))
        ping = PingSession(0, 3, interval_s=0.1).install(sim)
        sim.run(2.0)
        times, rtts = ping.answered()
        assert len(rtts) > 10
        # Serialization is negligible at 1 Tbps, so ping RTT tracks the
        # networkx-computed RTT closely (paper Fig. 3's "lines overlap").
        np.testing.assert_allclose(rtts, computed_rtt, rtol=0.02)

    def test_unanswered_probes_are_nan(self, small_network):
        sim = PacketSimulator(small_network)
        ping = PingSession(0, 3, interval_s=0.01).install(sim)
        sim.run(1.0)
        # The last probes cannot return before the simulation ends
        # (paper: "the last few pings' RTT is shown as 0").
        assert np.isnan(ping.rtts_s[-1])
        assert ping.loss_fraction > 0.0

    def test_stop_time_respected(self, sim):
        ping = PingSession(0, 3, interval_s=0.1, stop_s=0.55).install(sim)
        sim.run(2.0)
        assert len(ping.send_times_s) == 6  # 0.0 .. 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PingSession(0, 0)
        with pytest.raises(ValueError):
            PingSession(0, 1, interval_s=0.0)


class TestUdp:
    def test_paced_rate(self, small_network):
        sim = PacketSimulator(small_network)
        flow = UdpFlow(0, 3, rate_bps=1_000_000.0, stop_s=2.0).install(sim)
        sim.run(3.0)
        # 1 Mbps for 2 s = 2 Mbit sent; payload goodput slightly lower
        # due to headers.
        expected_packets = int(1_000_000.0 * 2.0 / (1500 * 8))
        assert abs(flow.packets_sent - expected_packets) <= 1
        assert flow.packets_received == flow.packets_sent
        assert flow.loss_fraction == 0.0

    def test_goodput_counts_payload_only(self, small_network):
        sim = PacketSimulator(small_network)
        flow = UdpFlow(0, 3, rate_bps=1_000_000.0, stop_s=1.0).install(sim)
        sim.run(2.0)
        goodput = flow.goodput_bps(1.0)
        assert goodput < 1_000_000.0
        assert goodput == pytest.approx(
            1_000_000.0 * (1500 - 40) / 1500, rel=0.02)

    def test_overload_drops(self, small_network):
        sim = PacketSimulator(small_network,
                              LinkConfig(gsl_rate_bps=500_000.0,
                                         gsl_queue_packets=5))
        flow = UdpFlow(0, 3, rate_bps=2_000_000.0, stop_s=1.0).install(sim)
        sim.run(2.0)
        assert flow.loss_fraction > 0.4
        assert sim.stats.packets_dropped_queue > 0

    def test_goodput_series_bins(self, small_network):
        sim = PacketSimulator(small_network)
        flow = UdpFlow(0, 3, rate_bps=1_000_000.0, stop_s=1.0,
                       bin_s=0.5).install(sim)
        sim.run(2.0)
        series = flow.goodput_series_bps()
        assert len(series) >= 2
        assert series[0] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            UdpFlow(0, 1, rate_bps=0.0)
        with pytest.raises(ValueError):
            UdpFlow(2, 2, rate_bps=1.0)


class TestTcpBasics:
    def test_finite_transfer_completes(self, small_network):
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3, max_packets=200).install(sim)
        sim.run(10.0)
        assert tcp.snd_una == 200
        assert tcp.rcv_nxt == 200

    def test_goodput_reasonable(self, small_network):
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3).install(sim)
        sim.run(10.0)
        goodput = tcp.goodput_bps(10.0)
        # Should fill a large fraction of the 10 Mbps bottleneck.
        assert goodput > 6_000_000.0

    def test_rtt_samples_at_least_base_rtt(self, small_network):
        engine = RoutingEngine(small_network)
        base = engine.pair_rtt_s(small_network.snapshot(0.0), 0, 3)
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3).install(sim)
        sim.run(5.0)
        _, rtts = tcp.rtt_log.as_arrays()
        assert rtts.min() >= base * 0.95

    def test_queue_inflates_rtt(self, small_network):
        """Loss-based TCP fills the buffer, inflating per-packet RTT by
        about queue/rate (paper §4.2)."""
        engine = RoutingEngine(small_network)
        base = engine.pair_rtt_s(small_network.snapshot(0.0), 0, 3)
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3).install(sim)
        sim.run(20.0)
        _, rtts = tcp.rtt_log.as_arrays()
        queue_delay = 100 * 1500 * 8 / 10e6  # 120 ms
        assert rtts.max() > base + 0.5 * queue_delay

    def test_cwnd_bounded_by_bdp_plus_queue(self, small_network):
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3).install(sim)
        sim.run(20.0)
        _, cwnd = tcp.cwnd_log.as_arrays()
        engine = RoutingEngine(small_network)
        base = engine.pair_rtt_s(small_network.snapshot(0.0), 0, 3)
        bdp_packets = 10e6 * (base + 0.12) / (1500 * 8)
        # After the initial transient the window stays near BDP+Q; allow
        # the slow-start overshoot factor of 2 plus margin.
        assert cwnd.max() <= 2.5 * (bdp_packets + 100)

    def test_rwnd_caps_window(self, small_network):
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3, rwnd_packets=20).install(sim)
        sim.run(5.0)
        assert tcp.snd_nxt - 0 <= 20 or tcp.flight_size <= 20

    def test_no_losses_on_overprovisioned_link(self, small_network):
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=1e9, gsl_rate_bps=1e9,
                                         isl_queue_packets=10_000,
                                         gsl_queue_packets=10_000))
        tcp = TcpNewRenoFlow(0, 3, max_packets=2000,
                             rwnd_packets=500).install(sim)
        sim.run(10.0)
        assert tcp.snd_una == 2000
        assert tcp.retransmissions == 0
        assert tcp.timeouts == 0

    def test_delayed_ack_mode_runs(self, small_network):
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3, max_packets=500,
                             delayed_ack_count=2).install(sim)
        sim.run(20.0)
        assert tcp.snd_una == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            TcpNewRenoFlow(1, 1)
        with pytest.raises(ValueError):
            TcpNewRenoFlow(0, 1, packet_bytes=30)
        with pytest.raises(ValueError):
            TcpNewRenoFlow(0, 1, delayed_ack_count=0)
        with pytest.raises(ValueError):
            TcpNewRenoFlow(0, 1, rwnd_packets=0)


class TestTcpLossRecovery:
    def test_recovers_from_drops(self, small_network):
        # Small queues force drops; the flow must still deliver all data.
        sim = PacketSimulator(small_network,
                              LinkConfig(gsl_queue_packets=10,
                                         isl_queue_packets=10))
        tcp = TcpNewRenoFlow(0, 3, max_packets=1000).install(sim)
        sim.run(40.0)
        assert tcp.snd_una == 1000
        assert sim.stats.packets_dropped_queue > 0
        assert tcp.retransmissions > 0

    def test_fast_retransmit_preferred_over_timeout(self, small_network):
        sim = PacketSimulator(small_network)
        tcp = TcpNewRenoFlow(0, 3).install(sim)
        sim.run(30.0)
        # With SACK and a steady sawtooth, recovery should almost always
        # be via fast retransmit, not RTO.
        assert tcp.fast_retransmits >= 1
        assert tcp.timeouts <= tcp.fast_retransmits

    def test_in_order_delivery_after_recovery(self, small_network):
        sim = PacketSimulator(small_network,
                              LinkConfig(gsl_queue_packets=20,
                                         isl_queue_packets=20))
        tcp = TcpNewRenoFlow(0, 3, max_packets=800).install(sim)
        sim.run(30.0)
        assert tcp.rcv_nxt == 800
        assert not tcp._out_of_order


class TestVegas:
    def test_keeps_queue_nearly_empty(self, small_network):
        """Vegas' RTT stays near the base RTT (paper Fig. 5(a) before the
        disruption), unlike NewReno which fills the buffer."""
        engine = RoutingEngine(small_network)
        base = engine.pair_rtt_s(small_network.snapshot(0.0), 0, 3)
        sim = PacketSimulator(small_network)
        vegas = TcpVegasFlow(0, 3).install(sim)
        sim.run(15.0)
        _, rtts = vegas.rtt_log.as_arrays()
        later = rtts[len(rtts) // 2:]
        queue_delay = 100 * 1500 * 8 / 10e6
        assert np.median(later) < base + 0.3 * queue_delay

    def test_achieves_good_throughput_on_stable_path(self, small_network):
        sim = PacketSimulator(small_network)
        vegas = TcpVegasFlow(0, 3).install(sim)
        sim.run(15.0)
        assert vegas.goodput_bps(15.0) > 5_000_000.0

    def test_base_rtt_tracked(self, small_network):
        engine = RoutingEngine(small_network)
        base = engine.pair_rtt_s(small_network.snapshot(0.0), 0, 3)
        sim = PacketSimulator(small_network)
        vegas = TcpVegasFlow(0, 3).install(sim)
        sim.run(5.0)
        assert vegas.base_rtt_s == pytest.approx(base, rel=0.1)

    def test_cwnd_floor(self, small_network):
        sim = PacketSimulator(small_network)
        vegas = TcpVegasFlow(0, 3).install(sim)
        sim.run(10.0)
        _, cwnd = vegas.cwnd_log.as_arrays()
        assert cwnd.min() >= 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TcpVegasFlow(0, 1, alpha=5.0, beta=4.0)

    def test_rtt_increase_cuts_window(self, small_network):
        """The Fig. 5 mechanism in isolation: once the base RTT is
        established, a persistent RTT increase (simulated by a sudden
        path-delay change) drives diff above beta and the window down."""
        sim = PacketSimulator(small_network)
        vegas = TcpVegasFlow(0, 3).install(sim)
        sim.run(10.0)
        cwnd_before = vegas.cwnd
        # Inject synthetic higher-RTT samples: as if the path lengthened
        # by 30 ms with no queueing.
        for _ in range(50):
            vegas._on_rtt_sample(vegas.base_rtt_s + 0.03)
            sim.run(sim.now + 0.2)
        assert vegas.cwnd < cwnd_before
