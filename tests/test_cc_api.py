"""Congestion-control plug-in API tests (repro.cc).

The heavyweight bit-identity gate (full anchor scenarios, every classic)
lives in ``benchmarks/test_cc_matrix.py``; here we prove the API
semantics — registry, estimator arithmetic, state dicts, shim surface —
plus one light parity run per classic against the frozen seed classes in
``tests/_seed_transport.py``.
"""

import numpy as np
import pytest

from repro.cc.api import (RTO_INITIAL_S, RTO_MAX_S, RTO_MIN_S,
                          CongestionController, RttEstimator,
                          controller_names, make_controller,
                          register_controller, resolve_controller)
from repro.cc.classic import BbrController, NewRenoController, VegasController
from repro.cc.learned import BanditBrain, BanditController
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.bbr import TcpBbrFlow
from repro.transport.tcp import TcpFlow, TcpNewRenoFlow
from repro.transport.vegas import TcpVegasFlow

from _seed_transport import (SeedTcpBbrFlow, SeedTcpNewRenoFlow,
                             SeedTcpVegasFlow)

pytestmark = pytest.mark.cc


class TestRttEstimator:
    def test_first_sample(self):
        est = RttEstimator()
        assert est.srtt is None and est.rto == RTO_INITIAL_S
        est.observe(0.3)
        assert est.srtt == 0.3
        assert est.rttvar == 0.15
        assert est.rto == pytest.approx(0.3 + 4 * 0.15)

    def test_subsequent_samples_rfc6298(self):
        est = RttEstimator()
        est.observe(0.3)
        est.observe(0.1)
        assert est.rttvar == pytest.approx(0.75 * 0.15 + 0.25 * 0.2)
        assert est.srtt == pytest.approx(0.875 * 0.3 + 0.125 * 0.1)

    def test_rto_clamped(self):
        est = RttEstimator()
        est.observe(0.001)
        assert est.rto == RTO_MIN_S
        est.observe(100.0)
        assert est.rto == RTO_MAX_S

    def test_backoff_doubles_and_saturates(self):
        est = RttEstimator()
        est.observe(0.3)
        rto = est.rto
        est.backoff()
        assert est.rto == pytest.approx(2 * rto)
        for _ in range(20):
            est.backoff()
        assert est.rto == RTO_MAX_S

    def test_state_roundtrip(self):
        est = RttEstimator()
        est.observe(0.25)
        est.backoff()
        clone = RttEstimator()
        clone.load_state_dict(est.state_dict())
        assert (clone.srtt, clone.rttvar, clone.rto) == \
            (est.srtt, est.rttvar, est.rto)


class TestRegistry:
    def test_classics_and_learned_registered(self):
        names = controller_names()
        for expected in ("newreno", "vegas", "bbr", "bandit"):
            assert expected in names

    def test_reregister_same_factory_is_noop(self):
        register_controller("newreno", NewRenoController)

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already taken"):
            register_controller("newreno", VegasController)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown congestion"):
            make_controller("no-such-controller")

    def test_make_controller_passes_kwargs(self):
        ctrl = make_controller("vegas", alpha=3, beta=5)
        assert (ctrl.alpha, ctrl.beta) == (3, 5)

    def test_resolve_default_is_newreno(self):
        assert isinstance(resolve_controller(None), NewRenoController)

    def test_resolve_instance_passthrough(self):
        ctrl = BbrController()
        assert resolve_controller(ctrl) is ctrl

    def test_resolve_bad_type(self):
        with pytest.raises(TypeError):
            resolve_controller(42)

    def test_double_attach_rejected(self, small_network):
        sim = PacketSimulator(small_network)
        flow = TcpFlow(0, 3, controller="newreno").install(sim)
        with pytest.raises(RuntimeError, match="already attached"):
            flow.controller.attach(flow)


class TestStateDicts:
    def test_classic_state_roundtrips(self, small_network):
        sim = PacketSimulator(small_network)
        flow = TcpFlow(0, 3, max_packets=50, controller="vegas").install(sim)
        sim.run(4.0)
        state = flow.controller.state_dict()
        assert "flow" not in state
        clone = VegasController()
        clone.load_state_dict(state)
        assert clone.state_dict() == state

    def test_bbr_deques_json_expressible(self, small_network):
        import json
        sim = PacketSimulator(small_network)
        flow = TcpFlow(0, 3, max_packets=80, controller="bbr").install(sim)
        sim.run(4.0)
        state = flow.controller.state_dict()
        json.dumps(state)  # filters were deques of tuples: must serialize
        clone = BbrController()
        clone.load_state_dict(state)
        assert clone.state_dict() == state
        assert clone.btl_bw_bps == flow.controller.btl_bw_bps

    def test_bandit_shares_brain_and_roundtrips(self):
        shared = BanditController.make_shared_state()
        a = BanditController(**shared)
        b = BanditController(**shared)
        assert a.brain is b.brain
        a.brain.update(1, 2.5)
        state = a.state_dict()
        assert state["brain"]["totals"][1] == 2.5
        clone = BanditController()
        clone.load_state_dict(state)
        assert clone.brain.totals == a.brain.totals


class TestShimSurface:
    def test_controller_names(self, small_network):
        sim = PacketSimulator(small_network)
        assert TcpNewRenoFlow(0, 3).install(sim).controller_name == "newreno"
        assert TcpVegasFlow(0, 4).install(sim).controller_name == "vegas"
        assert TcpBbrFlow(0, 5).install(sim).controller_name == "bbr"

    def test_vegas_parameters_delegate(self, small_network):
        sim = PacketSimulator(small_network)
        flow = TcpVegasFlow(0, 3, alpha=3, beta=6, gamma=2).install(sim)
        assert (flow.alpha, flow.beta, flow.gamma) == (3, 6, 2)
        assert flow.base_rtt_s is flow.controller.base_rtt_s

    def test_bbr_is_paced(self, small_network):
        sim = PacketSimulator(small_network)
        flow = TcpBbrFlow(0, 3).install(sim)
        assert flow.controller.paced
        assert flow._pacing_rate_bps > 0.0


class TestCompletionUnderLossyTail:
    """ISSUE 10 satellite: ``on_complete`` fires exactly once, at the
    final *cumulative* ACK, even when the last segment needs an RTO
    retransmission (no dup-ACKs can flag a tail loss)."""

    @pytest.mark.parametrize("controller", ["newreno", "bbr"])
    def test_on_complete_exactly_once(self, small_network, controller):
        sim = PacketSimulator(small_network)
        total = 40
        flow = TcpFlow(0, 3, max_packets=total,
                       controller=controller).install(sim)
        original = flow._transmit
        swallowed = []

        def lossy_transmit(seq, retransmit):
            # The first copy of the final segment vanishes on the wire.
            if seq == total - 1 and not retransmit and not swallowed:
                swallowed.append(seq)
                return
            original(seq, retransmit)

        flow._transmit = lossy_transmit
        completions = []
        flow.on_complete = completions.append
        sim.run(20.0)

        assert swallowed == [total - 1]
        assert flow.timeouts >= 1  # the tail loss was RTO-recovered
        assert flow.snd_una == total
        assert completions == [flow.completed_at_s]
        assert flow.completed_at_s is not None


def _cwnd_trace(network, flow_class, **kwargs):
    sim = PacketSimulator(network, link_config=LinkConfig(
        gsl_queue_packets=25, isl_queue_packets=25))
    flow = flow_class(0, 3, **kwargs).install(sim)
    sim.run(8.0)
    times, values = flow.cwnd_log.as_arrays()
    return times, values, flow.snd_una, flow.retransmissions


@pytest.mark.parametrize("seed_class,new_class,kwargs", [
    (SeedTcpNewRenoFlow, TcpNewRenoFlow, {"max_packets": 300}),
    (SeedTcpVegasFlow, TcpVegasFlow, {"max_packets": 300}),
    (SeedTcpBbrFlow, TcpBbrFlow,
     {"max_packets": 300, "delayed_ack_count": 2}),
])
def test_classic_parity_with_seed(small_network, seed_class, new_class,
                                  kwargs):
    """Refactored classics are bit-identical to the frozen seed flows."""
    st, sv, suna, sretx = _cwnd_trace(small_network, seed_class, **kwargs)
    nt, nv, nuna, nretx = _cwnd_trace(small_network, new_class, **kwargs)
    assert (suna, sretx) == (nuna, nretx)
    np.testing.assert_array_equal(st, nt)
    np.testing.assert_array_equal(sv, nv)
