"""Shared fixtures: small synthetic constellations for fast tests.

Full paper shells (1000+ satellites) are reserved for a few
session-scoped fixtures; most tests run on an 8x8 shell that preserves the
+Grid structure at 1/18th the size.
"""

from __future__ import annotations

import pytest

from repro.constellations.builder import Constellation
from repro.constellations.definitions import KUIPER_K1
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation, ground_stations_from_cities
from repro.orbits.shell import Shell
from repro.topology.network import LeoNetwork


@pytest.fixture
def small_shell() -> Shell:
    """A 10x10 circular shell at 600 km / 53 deg."""
    return Shell(name="X1", num_orbits=10, satellites_per_orbit=10,
                 altitude_m=600_000.0, inclination_deg=53.0)


@pytest.fixture
def small_constellation(small_shell: Shell) -> Constellation:
    return Constellation([small_shell])


@pytest.fixture
def small_stations() -> list:
    """Six well-spread ground stations (gids 0..5)."""
    sites = [
        ("Quito", 0.0, -78.5),
        ("Nairobi", -1.3, 36.8),
        ("Singapore", 1.35, 103.8),
        ("Honolulu", 21.3, -157.9),
        ("Sydney", -33.9, 151.2),
        ("Madrid", 40.4, -3.7),
    ]
    return [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(sites)
    ]


@pytest.fixture
def small_network(small_constellation: Constellation,
                  small_stations: list) -> LeoNetwork:
    """A 100-satellite +Grid network with 6 ground stations.

    The low minimum elevation (10 deg) keeps all stations connected
    despite the sparse test shell.
    """
    return LeoNetwork(small_constellation, small_stations,
                      min_elevation_deg=10.0)


@pytest.fixture(scope="session")
def kuiper_network() -> LeoNetwork:
    """The paper's Kuiper K1 + 100 cities network (session-scoped)."""
    return LeoNetwork(Constellation([KUIPER_K1]),
                      ground_stations_from_cities(count=100),
                      min_elevation_deg=30.0)
