"""Parity and unit tests for the incremental routing layer.

The contract under test (see :mod:`repro.routing.incremental`): whatever
path the :class:`IncrementalRouter` takes — snapshot cache, affected-
vertex repair, or large-delta fallback — its distances and next hops are
bit-identical to a from-scratch :class:`RoutingEngine` on the same
snapshot.  The parity classes force the repair path on *dense* deltas
(every ISL length changes between snapshots) with a huge fallback
fraction, and exercise the natural sparse-delta path with fault-style
masked topologies.
"""

import dataclasses

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.faults import FaultEvent, FaultSchedule
from repro.routing.engine import RoutingEngine
from repro.routing.incremental import IncrementalRouter, diff_graphs
from repro.topology.dynamic_state import DynamicState
from repro.topology.network import LeoNetwork

DESTINATIONS = [1, 2, 4, 5]


def canonical_coo(num_nodes, edges):
    """Canonical (lexsorted, coalesced) COO arrays for directed edges."""
    rows, cols, data = zip(*[(u, v, w) for u, v, w in edges])
    coo = csr_matrix((np.asarray(data, dtype=np.float64), (rows, cols)),
                     shape=(num_nodes, num_nodes)).tocoo()
    return (coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data)


def assert_same_routing(scratch, incremental):
    assert scratch.dst_gids == incremental.dst_gids
    assert np.array_equal(scratch.distance_m, incremental.distance_m)
    assert np.array_equal(scratch.next_hop, incremental.next_hop)


def masked_variant(snapshot, drop_indices):
    """The snapshot with a few ISLs removed (positions unchanged)."""
    keep = np.ones(len(snapshot.isl_pairs), dtype=bool)
    keep[drop_indices] = False
    return dataclasses.replace(
        snapshot, isl_pairs=snapshot.isl_pairs[keep],
        isl_lengths_m=snapshot.isl_lengths_m[keep])


class TestDiffGraphs:
    EDGES = [(0, 1, 10.0), (1, 2, 20.0), (2, 0, 30.0), (2, 3, 40.0)]

    def test_identical_graphs_empty_delta(self):
        old = canonical_coo(4, self.EDGES)
        new = canonical_coo(4, self.EDGES)
        delta = diff_graphs(*old, *new, num_nodes=4)
        assert delta.num_changed == 0
        assert delta.change_fraction == 0.0
        assert len(delta.worsened_u) == 0
        assert len(delta.improved_u) == 0
        assert delta.num_edges == len(self.EDGES)

    def test_removed_edge_is_worsened(self):
        old = canonical_coo(4, self.EDGES)
        new = canonical_coo(4, self.EDGES[1:])
        delta = diff_graphs(*old, *new, num_nodes=4)
        assert delta.num_changed == 1
        assert list(zip(delta.worsened_u, delta.worsened_v)) == [(0, 1)]
        assert len(delta.improved_u) == 0

    def test_added_edge_is_improved(self):
        old = canonical_coo(4, self.EDGES)
        new = canonical_coo(4, self.EDGES + [(3, 0, 5.0)])
        delta = diff_graphs(*old, *new, num_nodes=4)
        assert delta.num_changed == 1
        assert list(zip(delta.improved_u, delta.improved_v)) == [(3, 0)]
        assert delta.improved_w.tolist() == [5.0]
        assert len(delta.worsened_u) == 0

    def test_reweights_split_by_direction(self):
        old = canonical_coo(4, self.EDGES)
        reweighted = [(0, 1, 15.0), (1, 2, 20.0), (2, 0, 25.0),
                      (2, 3, 40.0)]
        new = canonical_coo(4, reweighted)
        delta = diff_graphs(*old, *new, num_nodes=4)
        assert delta.num_changed == 2
        assert list(zip(delta.worsened_u, delta.worsened_v)) == [(0, 1)]
        assert list(zip(delta.improved_u, delta.improved_v)) == [(2, 0)]
        assert delta.improved_w.tolist() == [25.0]
        assert delta.change_fraction == pytest.approx(0.5)


class TestIncrementalParity:
    def test_dense_deltas_forced_through_repair(self, small_network):
        # Every ISL/GSL length changes as satellites move; a huge
        # fallback fraction still forces the affected-vertex repair.
        scratch = RoutingEngine(small_network)
        router = IncrementalRouter(small_network, fallback_fraction=2.0)
        for t in np.arange(0.0, 6.0, 1.0):
            snapshot = small_network.snapshot(float(t))
            assert_same_routing(scratch.route_to_many(snapshot, DESTINATIONS),
                                router.route_to_many(snapshot, DESTINATIONS))
        assert router.inc_perf.repairs == 5
        assert router.inc_perf.full_solves == 1  # the t=0 warm-up

    def test_dense_deltas_fall_back_by_default(self, small_network):
        scratch = RoutingEngine(small_network)
        router = IncrementalRouter(small_network)
        for t in np.arange(0.0, 4.0, 1.0):
            snapshot = small_network.snapshot(float(t))
            assert_same_routing(scratch.route_to_many(snapshot, DESTINATIONS),
                                router.route_to_many(snapshot, DESTINATIONS))
        assert router.inc_perf.repairs == 0
        assert router.inc_perf.fallbacks_large_delta == 3

    def test_sparse_deltas_repair(self, small_network):
        # Fault-style deltas: same positions, a few ISLs masked in and
        # out per step — exactly the sparse case repair exists for.
        rng = np.random.default_rng(42)
        base = small_network.snapshot(0.0)
        router = IncrementalRouter(small_network)
        router.route_to_many(base, DESTINATIONS)
        for _ in range(12):
            drop = rng.choice(len(base.isl_pairs), size=4, replace=False)
            snapshot = masked_variant(base, drop)
            assert_same_routing(
                RoutingEngine(small_network).route_to_many(
                    snapshot, DESTINATIONS),
                router.route_to_many(snapshot, DESTINATIONS))
        assert router.inc_perf.repairs == 12
        assert router.inc_perf.fallbacks_large_delta == 0
        assert router.inc_perf.vertices_invalidated > 0

    def test_fault_schedule_parity(self, small_constellation,
                                   small_stations):
        # Outage waves switching on and off between snapshots, on top of
        # orbital motion; repair forced throughout.
        faults = FaultSchedule([
            FaultEvent.satellite_outage(12, 1.0, 3.0),
            FaultEvent.satellite_outage(55, 2.0, 5.0),
            FaultEvent.gsl_cut(2, 1.5, 4.0),
            FaultEvent.isl_cut(40, 41, 0.5, 4.5),
        ])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        scratch = RoutingEngine(network)
        router = IncrementalRouter(network, fallback_fraction=2.0)
        for t in np.arange(0.0, 6.0, 0.5):
            snapshot = network.snapshot(float(t))
            assert_same_routing(scratch.route_to_many(snapshot, DESTINATIONS),
                                router.route_to_many(snapshot, DESTINATIONS))
        assert router.inc_perf.repairs > 0

    def test_snapshot_cache_hit(self, small_network):
        router = IncrementalRouter(small_network)
        snapshot = small_network.snapshot(0.0)
        first = router.route_to_many(snapshot, DESTINATIONS)
        second = router.route_to_many(snapshot, DESTINATIONS)
        assert second is first
        assert router.inc_perf.snapshot_cache_hits == 1

    def test_destination_change_forces_full_solve(self, small_network):
        router = IncrementalRouter(small_network, fallback_fraction=2.0)
        snapshot = small_network.snapshot(0.0)
        router.route_to_many(snapshot, [1, 2])
        router.route_to_many(small_network.snapshot(1.0), [1, 3])
        assert router.inc_perf.full_solves == 2
        assert router.inc_perf.repairs == 0

    def test_path_queries_match(self, small_network):
        scratch = RoutingEngine(small_network)
        router = IncrementalRouter(small_network, fallback_fraction=2.0)
        for t in (0.0, 1.0, 2.0):
            snapshot = small_network.snapshot(t)
            expected = scratch.route_to_many(snapshot, DESTINATIONS)
            repaired = router.route_to_many(snapshot, DESTINATIONS)
            for dst in DESTINATIONS:
                for src in range(6):
                    if src == dst:
                        continue
                    assert scratch.path_and_distance_via(
                        expected.routing_for(dst), snapshot, src
                    ) == router.path_and_distance_via(
                        repaired.routing_for(dst), snapshot, src)

    def test_validation(self, small_network):
        with pytest.raises(ValueError):
            IncrementalRouter(small_network, fallback_fraction=-0.1)


class TestTimelineIntegration:
    PAIRS = [(0, 4), (1, 5), (3, 2)]

    def _faulted_network(self, constellation, stations):
        faults = FaultSchedule([
            FaultEvent.satellite_outage(7, 1.0, 4.0),
            FaultEvent.gsl_cut(4, 2.0, 5.0),
        ])
        return LeoNetwork(constellation, stations,
                          min_elevation_deg=10.0, faults=faults)

    def test_incremental_equals_scratch_timelines(self, small_constellation,
                                                  small_stations):
        network = self._faulted_network(small_constellation, small_stations)
        kwargs = dict(pairs=self.PAIRS, duration_s=6.0, step_s=1.0)
        incremental = DynamicState(network, routing="incremental",
                                   **kwargs).compute()
        scratch = DynamicState(network, routing="scratch",
                               **kwargs).compute()
        for pair in self.PAIRS:
            assert np.array_equal(incremental[pair].distances_m,
                                  scratch[pair].distances_m)
            assert incremental[pair].paths == scratch[pair].paths

    def test_workers_parity(self, small_constellation, small_stations):
        network = self._faulted_network(small_constellation, small_stations)
        state = DynamicState(network, self.PAIRS, duration_s=6.0,
                             step_s=1.0)
        serial = state.compute()
        parallel = state.compute(workers=2)
        for pair in self.PAIRS:
            assert np.array_equal(serial[pair].distances_m,
                                  parallel[pair].distances_m)
            assert serial[pair].paths == parallel[pair].paths

    def test_unknown_routing_mode_rejected(self, small_network):
        with pytest.raises(ValueError, match="unknown routing"):
            DynamicState(small_network, self.PAIRS, duration_s=2.0,
                         step_s=1.0, routing="magic")
