"""Tests for TLE generation and parsing (paper §3.1's TLE utility)."""

import math

import pytest

from repro.orbits.kepler import KeplerianElements
from repro.orbits.tle import (
    TLE,
    TLEFormatError,
    generate_tle,
    parse_tle,
    tle_checksum,
)


@pytest.fixture
def kuiper_elements() -> KeplerianElements:
    return KeplerianElements.circular(630_000.0, 51.9, raan_deg=42.3,
                                      mean_anomaly_deg=77.7)


class TestChecksum:
    def test_iss_line1_checksum(self):
        # A real TLE line for the ISS; its checksum digit is 7.
        line = ("1 25544U 98067A   08264.51782528 -.00002182  00000-0 "
                "-11606-4 0  2927")
        assert tle_checksum(line) == 7

    def test_minus_counts_one(self):
        base = "0" * 68
        with_minus = "-" + "0" * 67
        assert tle_checksum(with_minus) == tle_checksum(base) + 1

    def test_letters_count_zero(self):
        assert tle_checksum("U" * 68) == 0


class TestGeneration:
    def test_line_lengths(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "Kuiper-0")
        assert len(tle.line1) == 69
        assert len(tle.line2) == 69

    def test_checksums_valid(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "Kuiper-0")
        assert int(tle.line1[68]) == tle_checksum(tle.line1)
        assert int(tle.line2[68]) == tle_checksum(tle.line2)

    def test_line_numbers(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "Kuiper-0")
        assert tle.line1[0] == "1"
        assert tle.line2[0] == "2"

    def test_name_truncated_to_24_chars(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "X" * 40)
        assert len(tle.name) == 24

    def test_catalog_number_range(self, kuiper_elements):
        with pytest.raises(ValueError):
            generate_tle(kuiper_elements, "sat", catalog_number=100_000)

    def test_epoch_validation(self, kuiper_elements):
        with pytest.raises(ValueError):
            generate_tle(kuiper_elements, "sat", epoch_year=1900)
        with pytest.raises(ValueError):
            generate_tle(kuiper_elements, "sat", epoch_day=0.0)

    def test_str_has_three_lines(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "sat")
        assert len(str(tle).splitlines()) == 3


class TestRoundTrip:
    def test_elements_survive_round_trip(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "Kuiper-0", catalog_number=7,
                           epoch_year=2020, epoch_day=123.5)
        parsed, catalog, (year, day) = parse_tle(*tle.as_lines())
        assert catalog == 7
        assert year == 2020
        assert day == pytest.approx(123.5)
        assert parsed.semi_major_axis_m == pytest.approx(
            kuiper_elements.semi_major_axis_m, rel=1e-7)
        assert parsed.eccentricity == pytest.approx(0.0, abs=1e-7)
        assert parsed.inclination_rad == pytest.approx(
            kuiper_elements.inclination_rad, abs=1e-5)
        assert parsed.raan_rad == pytest.approx(
            kuiper_elements.raan_rad, abs=1e-5)
        assert parsed.mean_anomaly_rad == pytest.approx(
            kuiper_elements.mean_anomaly_rad, abs=1e-5)

    def test_eccentric_orbit_round_trip(self):
        el = KeplerianElements(semi_major_axis_m=7.2e6, eccentricity=0.0012345,
                               inclination_rad=math.radians(97.6),
                               raan_rad=1.0, arg_periapsis_rad=2.0,
                               mean_anomaly_rad=3.0)
        tle = generate_tle(el, "ecc")
        parsed, _, _ = parse_tle(*tle.as_lines())
        assert parsed.eccentricity == pytest.approx(0.0012345, abs=1e-7)
        assert parsed.arg_periapsis_rad == pytest.approx(2.0, abs=1e-5)

    def test_positions_match_after_round_trip(self, kuiper_elements):
        """The regenerated constellation flies the same trajectory (the
        paper validated this property against pyephem)."""
        from repro.orbits.propagation import propagate_to_eci
        import numpy as np
        tle = generate_tle(kuiper_elements, "sat")
        parsed, _, _ = parse_tle(*tle.as_lines())
        for t in [0.0, 500.0, 3000.0]:
            original = propagate_to_eci(kuiper_elements, t).position_m
            regenerated = propagate_to_eci(parsed, t).position_m
            assert np.linalg.norm(original - regenerated) < 200.0


class TestParsingValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(TLEFormatError):
            parse_tle("sat", "1 short", "2 short")

    def test_bad_checksum_rejected(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "sat")
        bad = tle.line1[:68] + str((int(tle.line1[68]) + 1) % 10)
        with pytest.raises(TLEFormatError):
            parse_tle(tle.name, bad, tle.line2)

    def test_swapped_lines_rejected(self, kuiper_elements):
        tle = generate_tle(kuiper_elements, "sat")
        with pytest.raises(TLEFormatError):
            parse_tle(tle.name, tle.line2, tle.line1)

    def test_catalog_mismatch_rejected(self, kuiper_elements):
        tle_a = generate_tle(kuiper_elements, "a", catalog_number=1)
        tle_b = generate_tle(kuiper_elements, "b", catalog_number=2)
        with pytest.raises(TLEFormatError):
            parse_tle("x", tle_a.line1, tle_b.line2)

    def test_epoch_century_windowing(self, kuiper_elements):
        tle_2049 = generate_tle(kuiper_elements, "s", epoch_year=2049)
        _, _, (year, _) = parse_tle(*tle_2049.as_lines())
        assert year == 2049
        tle_1999 = generate_tle(kuiper_elements, "s", epoch_year=1999)
        _, _, (year, _) = parse_tle(*tle_1999.as_lines())
        assert year == 1999


class TestTleDataclass:
    def test_as_lines(self):
        tle = TLE(name="n", line1="1" * 69, line2="2" * 69)
        assert tle.as_lines() == ["n", "1" * 69, "2" * 69]
