"""Tests for the visualization exporters."""

import json

import numpy as np
import pytest

from repro.viz.czml import (
    constellation_czml,
    constellation_summary,
    trajectory_samples,
    write_czml,
)
from repro.viz.ground_view import reachability_timeline, sky_snapshot
from repro.viz.paths_viz import episode_geography, path_episodes
from repro.viz.utilization_map import (
    UtilizationSegment,
    hotspot_summary,
    utilization_map,
)
from repro.topology.dynamic_state import PairTimeline


class TestCzml:
    def test_trajectory_samples_shape(self, small_constellation):
        samples = trajectory_samples(small_constellation, 30.0, 10.0)
        assert samples["times_s"].shape == (3,)
        assert samples["positions_m"].shape == (3, 100, 3)

    def test_document_structure(self, small_constellation):
        doc = constellation_czml(small_constellation, 20.0, 10.0)
        assert doc[0]["id"] == "document"
        assert len(doc) == 1 + 100
        sat_packet = doc[1]
        assert sat_packet["id"] == "satellite-0"
        cartesian = sat_packet["position"]["cartesian"]
        # (time, x, y, z) quadruples for 2 samples.
        assert len(cartesian) == 4 * 2

    def test_document_json_serializable(self, small_constellation):
        doc = constellation_czml(small_constellation, 20.0, 10.0)
        json.dumps(doc)

    def test_write_czml(self, small_constellation, tmp_path):
        doc = constellation_czml(small_constellation, 20.0, 10.0)
        path = tmp_path / "out.czml"
        write_czml(doc, str(path))
        loaded = json.loads(path.read_text())
        assert loaded[0]["version"] == "1.0"

    def test_validation(self, small_constellation):
        with pytest.raises(ValueError):
            trajectory_samples(small_constellation, 0.0, 1.0)

    def test_summary_latitude_bound(self, small_constellation):
        summary = constellation_summary(small_constellation)
        # A 53 deg shell never exceeds ~53 deg latitude (paper §6's
        # inclination-bounds-coverage argument).
        assert summary["max_abs_latitude_deg"] <= 53.5
        assert summary["max_abs_latitude_deg"] >= 45.0
        assert summary["num_satellites"] == 100
        assert summary["shells"][0]["inclination_deg"] == 53.0


class TestGroundView:
    def test_sky_snapshot_fields(self, small_network):
        station = small_network.ground_stations[0]
        snap = sky_snapshot(small_network.constellation, station, 10.0, 0.0)
        assert snap.num_above_horizon >= snap.num_connectable
        assert (snap.elevations_deg > 0).all()
        assert ((snap.azimuths_deg >= 0) & (snap.azimuths_deg < 360)).all()

    def test_connectable_consistent_with_gsl(self, small_network):
        """The sky view's connectable count equals the snapshot's GSL
        edge count for the same station and elevation."""
        station = small_network.ground_stations[2]
        sky = sky_snapshot(small_network.constellation, station,
                           small_network.min_elevation_deg, 5.0)
        topo = small_network.snapshot(5.0)
        assert sky.num_connectable == \
            len(topo.gsl_edges[2].satellite_ids)

    def test_to_dict(self, small_network):
        station = small_network.ground_stations[0]
        snap = sky_snapshot(small_network.constellation, station, 10.0, 0.0)
        data = snap.to_dict()
        assert len(data["satellites"]) == snap.num_above_horizon

    def test_reachability_timeline(self, small_network):
        station = small_network.ground_stations[1]
        timeline = reachability_timeline(
            small_network.constellation, station, 10.0,
            duration_s=30.0, step_s=10.0)
        assert timeline["times_s"].shape == (3,)
        assert (timeline["num_connectable"]
                <= timeline["num_above_horizon"]).all()

    def test_reachability_validation(self, small_network):
        with pytest.raises(ValueError):
            reachability_timeline(small_network.constellation,
                                  small_network.ground_stations[0],
                                  10.0, duration_s=0.0)


class TestPathEpisodes:
    def _timeline(self):
        times = np.arange(6, dtype=float)
        distances = np.array([1e7, 1e7, 1.2e7, 1.2e7, np.inf, 1e7])
        paths = [(100, 1, 101), (100, 1, 101), (100, 2, 101),
                 (100, 2, 101), None, (100, 1, 101)]
        return PairTimeline(src_gid=0, dst_gid=1, times_s=times,
                            distances_m=distances, paths=paths)

    def test_episode_boundaries(self):
        episodes = path_episodes(self._timeline())
        assert len(episodes) == 4
        assert episodes[0].path == (100, 1, 101)
        assert episodes[0].start_s == 0.0
        assert episodes[0].end_s == 2.0
        assert episodes[2].path is None
        assert episodes[2].hops is None

    def test_episode_rtt_ranges(self):
        episodes = path_episodes(self._timeline())
        assert episodes[1].min_rtt_s == episodes[1].max_rtt_s
        assert episodes[1].min_rtt_s == pytest.approx(
            2 * 1.2e7 / 299_792_458.0)

    def test_empty_timeline(self):
        tl = PairTimeline(src_gid=0, dst_gid=1,
                          times_s=np.empty(0),
                          distances_m=np.empty(0), paths=[])
        assert path_episodes(tl) == []

    def test_episode_geography(self, small_network):
        from repro.topology.dynamic_state import DynamicState
        state = DynamicState(small_network, [(0, 3)], duration_s=3.0,
                             step_s=1.0)
        tl = state.compute()[(0, 3)]
        episodes = path_episodes(tl)
        geo = episode_geography(episodes[0], small_network)
        assert geo["waypoints"][0]["kind"] == "gs"
        assert geo["waypoints"][-1]["kind"] == "gs"
        for wp in geo["waypoints"][1:-1]:
            assert wp["kind"] == "satellite"
            assert -90 <= wp["latitude_deg"] <= 90


class TestUtilizationMap:
    def test_segments_merged_and_filtered(self, small_constellation):
        utilization = {(0, 1): 0.5, (1, 0): 0.9, (2, 3): 0.0}
        segments = utilization_map(small_constellation, utilization, 0.0)
        assert len(segments) == 1  # zero-load excluded, directions merged
        assert segments[0].utilization == 0.9
        assert segments[0].sat_a == 0 and segments[0].sat_b == 1

    def test_segment_coordinates_valid(self, small_constellation):
        segments = utilization_map(small_constellation,
                                   {(0, 1): 1.0, (5, 6): 0.2}, 0.0)
        for seg in segments:
            assert -90 <= seg.lat_a <= 90
            assert -180 <= seg.lon_b <= 180

    def test_hotspot_summary(self):
        segments = [
            UtilizationSegment(0, 1, 40.0, -40.0, 45.0, -30.0, 0.95),
            UtilizationSegment(2, 3, 42.0, -35.0, 44.0, -25.0, 0.85),
            UtilizationSegment(4, 5, -10.0, 100.0, -12.0, 110.0, 0.1),
        ]
        summary = hotspot_summary(segments, hot_threshold=0.8)
        assert summary["num_used_isls"] == 3
        assert summary["num_hot_isls"] == 2
        # Hot center is in the (North) Atlantic region of the inputs.
        assert 40.0 < summary["hot_center_lat_deg"] < 45.0
        assert -35.0 < summary["hot_center_lon_deg"] < -25.0

    def test_hotspot_threshold_validation(self):
        with pytest.raises(ValueError):
            hotspot_summary([], hot_threshold=0.0)

    def test_no_hot_isls(self):
        segments = [UtilizationSegment(0, 1, 0, 0, 1, 1, 0.2)]
        summary = hotspot_summary(segments)
        assert summary["num_hot_isls"] == 0
        assert "hot_center_lat_deg" not in summary
