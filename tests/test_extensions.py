"""Tests for the paper-§7 extension features: multipath routing, the
weather model, Doppler analysis, and satellite-failure injection."""

import numpy as np
import pytest

from repro.analysis.doppler import (
    doppler_shift_hz,
    isl_radial_velocities_m_per_s,
    max_isl_doppler_summary,
)
from repro.ground.weather import RainEvent, WeatherModel
from repro.routing.engine import RoutingEngine
from repro.routing.multipath import (
    edge_disjoint_paths,
    edge_disjoint_paths_many,
    k_shortest_paths,
    k_shortest_paths_many,
    path_distance_m,
)
from repro.topology.isl import plus_grid_isls
from repro.topology.network import LeoNetwork


class TestKShortestPaths:
    def test_first_path_matches_engine(self, small_network):
        snap = small_network.snapshot(0.0)
        engine = RoutingEngine(small_network)
        paths = k_shortest_paths(snap, 0, 3, k=3)
        assert len(paths) >= 1
        best_path, best_distance = paths[0]
        assert best_distance == pytest.approx(
            engine.pair_distance_m(snap, 0, 3), rel=1e-9)

    def test_sorted_by_distance(self, small_network):
        snap = small_network.snapshot(0.0)
        paths = k_shortest_paths(snap, 1, 4, k=4)
        distances = [d for _, d in paths]
        assert distances == sorted(distances)

    def test_paths_are_simple_and_distinct(self, small_network):
        snap = small_network.snapshot(0.0)
        paths = k_shortest_paths(snap, 0, 5, k=4)
        seen = set()
        for path, _ in paths:
            assert len(path) == len(set(path))  # loopless
            key = tuple(path)
            assert key not in seen
            seen.add(key)

    def test_no_third_party_gs_transit(self, small_network):
        snap = small_network.snapshot(0.0)
        for path, _ in k_shortest_paths(snap, 0, 3, k=5):
            for node in path[1:-1]:
                assert node < small_network.num_satellites

    def test_endpoints(self, small_network):
        snap = small_network.snapshot(0.0)
        for path, _ in k_shortest_paths(snap, 2, 5, k=2):
            assert path[0] == snap.gs_node_id(2)
            assert path[-1] == snap.gs_node_id(5)

    def test_validation(self, small_network):
        snap = small_network.snapshot(0.0)
        with pytest.raises(ValueError):
            k_shortest_paths(snap, 0, 0, k=1)
        with pytest.raises(ValueError):
            k_shortest_paths(snap, 0, 1, k=0)


class TestEdgeDisjointPaths:
    def test_disjointness(self, small_network):
        snap = small_network.snapshot(0.0)
        paths = edge_disjoint_paths(snap, 0, 3, max_paths=4)
        assert len(paths) >= 2  # +Grid plus several GSLs offer diversity
        used = set()
        for path, _ in paths:
            for a, b in zip(path, path[1:]):
                edge = (min(a, b), max(a, b))
                assert edge not in used
                used.add(edge)

    def test_distances_nondecreasing(self, small_network):
        snap = small_network.snapshot(0.0)
        paths = edge_disjoint_paths(snap, 1, 4, max_paths=4)
        distances = [d for _, d in paths]
        assert distances == sorted(distances)

    def test_validation(self, small_network):
        snap = small_network.snapshot(0.0)
        with pytest.raises(ValueError):
            edge_disjoint_paths(snap, 0, 1, max_paths=0)

    def test_equal_endpoints_rejected(self, small_network):
        # Regression: equal endpoints used to return max_paths copies of
        # the degenerate single-node path [src] with distance 0.
        snap = small_network.snapshot(0.0)
        with pytest.raises(ValueError, match="must differ"):
            edge_disjoint_paths(snap, 2, 2, max_paths=4)


class TestBatchedMultipath:
    PAIRS = [(0, 3), (1, 4), (2, 5), (0, 5)]

    def test_k_shortest_many_matches_per_pair(self, small_network):
        snap = small_network.snapshot(0.0)
        batched = k_shortest_paths_many(snap, self.PAIRS, k=3)
        assert set(batched) == set(self.PAIRS)
        for pair in self.PAIRS:
            assert batched[pair] == k_shortest_paths(snap, *pair, k=3)

    def test_edge_disjoint_many_matches_per_pair(self, small_network):
        snap = small_network.snapshot(0.0)
        batched = edge_disjoint_paths_many(snap, self.PAIRS, max_paths=3)
        for pair in self.PAIRS:
            assert batched[pair] == edge_disjoint_paths(
                snap, *pair, max_paths=3)

    def test_duplicates_collapse(self, small_network):
        snap = small_network.snapshot(0.0)
        batched = k_shortest_paths_many(snap, [(0, 3), (0, 3)], k=2)
        assert list(batched) == [(0, 3)]

    def test_validation(self, small_network):
        snap = small_network.snapshot(0.0)
        with pytest.raises(ValueError, match="must differ"):
            k_shortest_paths_many(snap, [(0, 3), (1, 1)], k=2)
        with pytest.raises(ValueError, match="must differ"):
            edge_disjoint_paths_many(snap, [(4, 4)], max_paths=2)
        with pytest.raises(ValueError):
            k_shortest_paths_many(snap, [(0, 3)], k=0)
        with pytest.raises(ValueError):
            edge_disjoint_paths_many(snap, [(0, 3)], max_paths=0)


class TestWeatherModel:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            RainEvent(0, 10.0, 5.0, 20.0)
        with pytest.raises(ValueError):
            RainEvent(0, 0.0, 5.0, -1.0)

    def test_penalty_windows(self):
        model = WeatherModel([
            RainEvent(0, 10.0, 20.0, 15.0),
            RainEvent(0, 15.0, 30.0, 10.0),
            RainEvent(1, 0.0, 5.0, 90.0),
        ])
        assert model.penalty_deg(0, 5.0) == 0.0
        assert model.penalty_deg(0, 12.0) == 15.0
        assert model.penalty_deg(0, 17.0) == 25.0  # overlapping events add
        assert model.penalty_deg(0, 25.0) == 10.0
        assert model.penalty_deg(2, 12.0) == 0.0
        assert model.is_raining(1, 2.0)
        assert not model.is_raining(1, 6.0)

    def test_elevation_capped_at_90(self):
        model = WeatherModel([RainEvent(0, 0.0, 10.0, 90.0)])
        assert model.min_elevation_deg(0, 30.0, 5.0) == 90.0

    def test_synthetic_deterministic(self):
        a = WeatherModel.synthetic(50, 100.0, seed=3)
        b = WeatherModel.synthetic(50, 100.0, seed=3)
        assert a.num_events == b.num_events
        c = WeatherModel.synthetic(50, 100.0, seed=4)
        # Different seeds produce a different schedule (statistically).
        assert a.num_events != c.num_events or a._by_gid != c._by_gid

    def test_network_integration_storm_disconnects(self, small_constellation,
                                                   small_stations):
        """A total-outage storm over a station removes its GSLs while
        active, and they return afterwards."""
        storm = WeatherModel([RainEvent(0, 10.0, 20.0, 90.0)])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, weather=storm)
        before = network.snapshot(5.0)
        during = network.snapshot(15.0)
        after = network.snapshot(25.0)
        assert before.gsl_edges[0].is_connected
        assert not during.gsl_edges[0].is_connected
        assert after.gsl_edges[0].is_connected
        # Other stations are unaffected.
        assert during.gsl_edges[1].is_connected

    def test_weather_reroutes_traffic(self, small_constellation,
                                      small_stations):
        """Rerouting around bad weather: a partial-penalty storm changes
        the path but connectivity survives (the paper's §7 use case)."""
        storm = WeatherModel([RainEvent(0, 0.0, 100.0, 10.0)])
        clear = LeoNetwork(small_constellation, small_stations,
                           min_elevation_deg=10.0)
        rainy = LeoNetwork(small_constellation, small_stations,
                           min_elevation_deg=10.0, weather=storm)
        clear_rtt = RoutingEngine(clear).pair_rtt_s(
            clear.snapshot(50.0), 0, 3)
        rainy_rtt = RoutingEngine(rainy).pair_rtt_s(
            rainy.snapshot(50.0), 0, 3)
        assert np.isfinite(rainy_rtt)
        assert rainy_rtt >= clear_rtt  # fewer options can't shorten paths


class TestDoppler:
    def test_same_orbit_links_zero_doppler(self, small_constellation):
        """+Grid intra-orbit neighbors keep constant separation."""
        pairs = np.array([[0, 1], [1, 2]])  # neighbors in orbit 0
        velocities = isl_radial_velocities_m_per_s(
            small_constellation, pairs, time_s=100.0)
        np.testing.assert_allclose(velocities, 0.0, atol=0.5)

    def test_cross_orbit_links_oscillate(self, small_constellation):
        """Cross-orbit links change length (paper §2.3) — at some sample
        time their radial speed is large."""
        shell = small_constellation.shells[0]
        cross_pairs = np.array([[0, shell.satellites_per_orbit]])
        speeds = [
            abs(float(isl_radial_velocities_m_per_s(
                small_constellation, cross_pairs, t)[0]))
            for t in np.linspace(10.0, shell.elements_for(
                shell.satellite_index(0)).period_s, 20)
        ]
        assert max(speeds) > 100.0

    def test_doppler_shift_sign(self):
        # Receding link (positive radial velocity) -> negative shift.
        shift = doppler_shift_hz(193.4e12, np.array([1000.0]))
        assert shift[0] < 0.0

    def test_doppler_shift_magnitude(self):
        # v/c * f: 3 km/s on a 193.4 THz carrier is ~1.9 GHz.
        shift = doppler_shift_hz(193.4e12, np.array([3000.0]))
        assert abs(shift[0]) == pytest.approx(193.4e12 * 3000 / 299792458.0)

    def test_summary(self, small_constellation):
        pairs = plus_grid_isls(small_constellation)
        summary = max_isl_doppler_summary(small_constellation, pairs,
                                          sample_times_s=(0.0, 300.0))
        assert summary["max_radial_speed_m_per_s"] > 0.0
        assert summary["max_doppler_shift_hz"] > 0.0

    def test_validation(self, small_constellation):
        with pytest.raises(ValueError):
            isl_radial_velocities_m_per_s(
                small_constellation, np.array([[0, 1]]), 0.0, dt_s=0.0)
        with pytest.raises(ValueError):
            doppler_shift_hz(0.0, np.array([1.0]))


class TestFailureInjection:
    def test_failed_satellite_loses_links(self, small_constellation,
                                          small_stations):
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0,
                             failed_satellites=[5])
        assert not any(5 in pair for pair in
                       network.isl_pairs.tolist())
        snap = network.snapshot(0.0)
        for edges in snap.gsl_edges.values():
            assert 5 not in edges.satellite_ids

    def test_plus_grid_routes_around_single_failure(self,
                                                    small_constellation,
                                                    small_stations):
        """+Grid's mesh redundancy: killing one on-path satellite leaves
        the pair connected, at an equal-or-longer RTT."""
        healthy = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0)
        engine = RoutingEngine(healthy)
        snap = healthy.snapshot(0.0)
        path = engine.path(snap, 0, 3)
        victim = next(n for n in path[1:-1]
                      if n < healthy.num_satellites)
        healthy_rtt = engine.pair_rtt_s(snap, 0, 3)

        degraded = LeoNetwork(small_constellation, small_stations,
                              min_elevation_deg=10.0,
                              failed_satellites=[victim])
        degraded_engine = RoutingEngine(degraded)
        degraded_snap = degraded.snapshot(0.0)
        degraded_rtt = degraded_engine.pair_rtt_s(degraded_snap, 0, 3)
        assert np.isfinite(degraded_rtt)
        assert degraded_rtt >= healthy_rtt
        new_path = degraded_engine.path(degraded_snap, 0, 3)
        assert victim not in new_path

    def test_mass_failure_disconnects(self, small_constellation,
                                      small_stations):
        # Kill 90% of satellites: the network falls apart.
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0,
                             failed_satellites=list(range(90)))
        engine = RoutingEngine(network)
        snap = network.snapshot(0.0)
        rtts = [engine.pair_rtt_s(snap, 0, dst) for dst in range(1, 6)]
        assert any(not np.isfinite(r) for r in rtts)

    def test_out_of_range_failure_rejected(self, small_constellation,
                                           small_stations):
        with pytest.raises(ValueError):
            LeoNetwork(small_constellation, small_stations,
                       min_elevation_deg=10.0,
                       failed_satellites=[1000])


class TestHeterogeneousCapacities:
    def test_isl_override_applies(self, small_network):
        from repro.simulation.simulator import LinkConfig, PacketSimulator
        a, b = (int(x) for x in small_network.isl_pairs[0])
        sim = PacketSimulator(
            small_network, LinkConfig(isl_rate_bps=10e6),
            isl_rate_overrides={(a, b): 50e6})
        assert sim.isl_device(a, b).rate_bps == 50e6
        assert sim.isl_device(b, a).rate_bps == 10e6  # directed override

    def test_gsl_override_applies(self, small_network):
        from repro.simulation.simulator import PacketSimulator
        node = small_network.gs_node_id(0)
        sim = PacketSimulator(small_network,
                              gsl_rate_overrides={node: 1e6})
        assert sim.gsl_device(node).rate_bps == 1e6

    def test_non_isl_override_rejected(self, small_network):
        from repro.simulation.simulator import PacketSimulator
        with pytest.raises(ValueError):
            PacketSimulator(small_network,
                            isl_rate_overrides={(0, 50): 1e6})

    def test_fluid_capacity_override_shifts_bottleneck(self, small_network):
        """Upgrading a flow's source GSL device moves its bottleneck."""
        from repro.fluid.engine import FluidFlow, FluidSimulation
        from repro.routing.engine import RoutingEngine
        engine = RoutingEngine(small_network)
        snap = small_network.snapshot(0.0)
        path = engine.path(snap, 0, 3)
        src_gsl = ("gsl", snap.gs_node_id(0))
        base = FluidSimulation(small_network, [FluidFlow(0, 3)],
                               link_capacity_bps=10e6)
        upgraded = FluidSimulation(
            small_network, [FluidFlow(0, 3)], link_capacity_bps=10e6,
            capacity_overrides={src_gsl: 40e6})
        base_rate = base.run(1.0, 1.0).flow_rates_bps[0, 0]
        up_rate = upgraded.run(1.0, 1.0).flow_rates_bps[0, 0]
        # The flow is still limited by the rest of the (10 Mbit/s) path.
        assert base_rate == pytest.approx(10e6, rel=1e-6)
        assert up_rate == pytest.approx(10e6, rel=1e-6)
        # But a degraded device caps it.
        degraded = FluidSimulation(
            small_network, [FluidFlow(0, 3)], link_capacity_bps=10e6,
            capacity_overrides={src_gsl: 2e6})
        down_rate = degraded.run(1.0, 1.0).flow_rates_bps[0, 0]
        assert down_rate == pytest.approx(2e6, rel=1e-6)

    def test_fluid_invalid_override_rejected(self, small_network):
        from repro.fluid.engine import FluidFlow, FluidSimulation
        with pytest.raises(ValueError):
            FluidSimulation(small_network, [FluidFlow(0, 1)],
                            capacity_overrides={("gsl", 0): 0.0})
