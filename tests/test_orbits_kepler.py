"""Tests for Keplerian elements and anomaly conversions."""

import math

import pytest

from repro.geo.constants import WGS72
from repro.orbits.kepler import (
    KeplerianElements,
    eccentric_to_mean_anomaly,
    eccentric_to_true_anomaly,
    mean_motion_rad_per_s,
    mean_to_eccentric_anomaly,
    mean_to_true_anomaly,
    orbital_period_s,
    orbital_velocity_m_per_s,
    semi_major_axis_from_period,
    true_to_eccentric_anomaly,
    wrap_angle,
)


class TestWrapAngle:
    def test_already_in_range(self):
        assert wrap_angle(1.0) == 1.0

    def test_negative(self):
        assert wrap_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_large(self):
        assert wrap_angle(5 * math.pi) == pytest.approx(math.pi)

    def test_exact_two_pi_wraps_to_zero(self):
        assert wrap_angle(2 * math.pi) == pytest.approx(0.0, abs=1e-15)


class TestKeplerianElements:
    def test_circular_constructor(self):
        el = KeplerianElements.circular(altitude_m=550_000.0,
                                        inclination_deg=53.0,
                                        raan_deg=90.0,
                                        mean_anomaly_deg=45.0)
        assert el.semi_major_axis_m == pytest.approx(
            WGS72.semi_major_axis_m + 550_000.0)
        assert el.eccentricity == 0.0
        assert el.inclination_rad == pytest.approx(math.radians(53.0))
        assert el.raan_rad == pytest.approx(math.pi / 2)
        assert el.mean_anomaly_rad == pytest.approx(math.pi / 4)

    def test_invalid_semi_major_axis(self):
        with pytest.raises(ValueError):
            KeplerianElements(semi_major_axis_m=-1.0)

    def test_invalid_eccentricity(self):
        with pytest.raises(ValueError):
            KeplerianElements(semi_major_axis_m=7e6, eccentricity=1.0)
        with pytest.raises(ValueError):
            KeplerianElements(semi_major_axis_m=7e6, eccentricity=-0.1)

    def test_invalid_inclination(self):
        with pytest.raises(ValueError):
            KeplerianElements(semi_major_axis_m=7e6,
                              inclination_rad=3.5)

    def test_period_at_550km_is_about_96_minutes(self):
        # The paper (§2.3) quotes ~100 minutes for LEO orbits.
        el = KeplerianElements.circular(550_000.0, 53.0)
        assert 90 * 60 < el.period_s < 100 * 60

    def test_mean_anomaly_advances_linearly(self):
        el = KeplerianElements.circular(550_000.0, 53.0)
        quarter = el.period_s / 4.0
        assert el.mean_anomaly_at(quarter) == pytest.approx(math.pi / 2,
                                                            rel=1e-9)

    def test_mean_anomaly_wraps_after_full_period(self):
        el = KeplerianElements.circular(550_000.0, 53.0,
                                        mean_anomaly_deg=10.0)
        after = el.mean_anomaly_at(el.period_s)
        assert after == pytest.approx(math.radians(10.0), abs=1e-9)

    def test_with_mean_anomaly(self):
        el = KeplerianElements.circular(550_000.0, 53.0)
        el2 = el.with_mean_anomaly(1.5)
        assert el2.mean_anomaly_rad == 1.5
        assert el2.semi_major_axis_m == el.semi_major_axis_m

    def test_mean_motion_rev_per_day_realistic(self):
        # LEO satellites complete ~15 revolutions per day.
        el = KeplerianElements.circular(550_000.0, 53.0)
        assert 14.5 < el.mean_motion_rev_per_day < 15.7


class TestKeplerLaws:
    def test_period_formula(self):
        a = 7e6
        t = orbital_period_s(a)
        assert t == pytest.approx(2 * math.pi * math.sqrt(a ** 3 / 3.986008e14))

    def test_period_inverse(self):
        a = 6_928_135.0
        assert semi_major_axis_from_period(orbital_period_s(a)) == \
            pytest.approx(a, rel=1e-12)

    def test_higher_orbit_slower(self):
        low = orbital_velocity_m_per_s(6_928_135.0)
        high = orbital_velocity_m_per_s(7_703_135.0)
        assert low > high

    def test_velocity_at_550km_exceeds_27000_kmph(self):
        # Paper §2.3: "the orbital velocity is more than 27,000 km/hr".
        v = orbital_velocity_m_per_s(WGS72.semi_major_axis_m + 550_000.0)
        assert v * 3.6 > 27_000.0

    def test_mean_motion_consistent_with_period(self):
        a = 7_008_135.0
        assert mean_motion_rad_per_s(a) * orbital_period_s(a) == \
            pytest.approx(2 * math.pi)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            orbital_period_s(0.0)
        with pytest.raises(ValueError):
            orbital_velocity_m_per_s(-5.0)
        with pytest.raises(ValueError):
            semi_major_axis_from_period(0.0)
        with pytest.raises(ValueError):
            mean_motion_rad_per_s(-1.0)


class TestAnomalyConversions:
    def test_circular_orbit_identity(self):
        for m in [0.0, 1.0, math.pi, 5.0]:
            assert mean_to_eccentric_anomaly(m, 0.0) == pytest.approx(
                wrap_angle(m))
            assert eccentric_to_true_anomaly(m, 0.0) == pytest.approx(
                wrap_angle(m))

    def test_keplers_equation_satisfied(self):
        for e in [0.01, 0.3, 0.7, 0.95]:
            for m in [0.1, 1.0, 2.5, 4.0, 6.0]:
                big_e = mean_to_eccentric_anomaly(m, e)
                assert big_e - e * math.sin(big_e) == pytest.approx(
                    wrap_angle(m), abs=1e-10)

    def test_eccentric_mean_round_trip(self):
        for e in [0.1, 0.5, 0.9]:
            for big_e in [0.5, 2.0, 4.5]:
                m = eccentric_to_mean_anomaly(big_e, e)
                assert mean_to_eccentric_anomaly(m, e) == pytest.approx(
                    big_e, abs=1e-9)

    def test_eccentric_true_round_trip(self):
        for e in [0.0, 0.2, 0.8]:
            for big_e in [0.3, 1.5, 3.0, 5.5]:
                nu = eccentric_to_true_anomaly(big_e, e)
                assert true_to_eccentric_anomaly(nu, e) == pytest.approx(
                    wrap_angle(big_e), abs=1e-9)

    def test_true_anomaly_leads_eccentric_before_apoapsis(self):
        # For 0 < E < pi the true anomaly is ahead of the eccentric one.
        nu = eccentric_to_true_anomaly(1.0, 0.5)
        assert nu > 1.0

    def test_mean_to_true_composition(self):
        e, m = 0.4, 2.0
        big_e = mean_to_eccentric_anomaly(m, e)
        assert mean_to_true_anomaly(m, e) == pytest.approx(
            eccentric_to_true_anomaly(big_e, e))

    def test_invalid_eccentricity_rejected(self):
        with pytest.raises(ValueError):
            mean_to_eccentric_anomaly(1.0, 1.0)
