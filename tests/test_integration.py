"""Integration tests: end-to-end scenarios exercising the full stack.

These reproduce the *mechanisms* behind the paper's findings at test
scale: simulated pings tracking geometry-computed RTTs, bent-pipe relay
routing, and packet/fluid engine agreement.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.fluid.engine import FluidFlow, FluidSimulation
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import relay_grid_between
from repro.routing.engine import RoutingEngine
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.topology.dynamic_state import DynamicState
from repro.transport.ping import PingSession
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.udp import UdpFlow


class TestPingTracksComputedRtt:
    def test_over_time(self, small_network):
        """Paper Fig. 3: ping measurements and networkx-computed RTTs
        'match closely, with the lines almost entirely overlapping'."""
        duration = 30.0
        state = DynamicState(small_network, [(0, 3)],
                             duration_s=duration, step_s=1.0)
        timeline = state.compute()[(0, 3)]
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=1e12,
                                         gsl_rate_bps=1e12))
        ping = PingSession(0, 3, interval_s=1.0).install(sim)
        sim.run(duration)
        rtts = ping.rtts_s
        computed = timeline.rtts_s
        answered = ~np.isnan(rtts)
        # Compare probe k with the snapshot at the same second.
        matched = 0
        for k in np.nonzero(answered)[0]:
            if np.isfinite(computed[k]):
                assert rtts[k] == pytest.approx(computed[k], rel=0.05)
                matched += 1
        assert matched > duration * 0.8

    def test_rtt_changes_with_path_changes(self, small_network):
        """Over a long window, the measured RTT series is not constant —
        satellite motion changes paths and latencies (paper §4.1)."""
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=1e12,
                                         gsl_rate_bps=1e12))
        ping = PingSession(0, 3, interval_s=2.0).install(sim)
        sim.run(120.0)
        _, rtts = ping.answered()
        assert rtts.max() - rtts.min() > 1e-4  # at least 0.1 ms of change


class TestBentPipeRelays:
    def _bent_pipe_hypatia(self):
        relays = relay_grid_between(GeodeticPosition(48.86, 2.35),
                                    GeodeticPosition(55.76, 37.62),
                                    rows=3, columns=5)
        return Hypatia.from_shell_name("K1", num_cities=100,
                                       use_isls=False,
                                       extra_stations=relays)

    def test_relay_path_exists_and_alternates(self):
        """Appendix A: without ISLs, Paris-Moscow connects through GS
        relays, alternating satellite and ground hops."""
        hypatia = self._bent_pipe_hypatia()
        pair = hypatia.pair("Paris", "Moscow")
        snap = hypatia.snapshot(0.0)
        path = hypatia.routing.path(snap, *pair)
        assert path is not None
        kinds = []
        for node in path:
            if node < hypatia.network.num_satellites:
                kinds.append("sat")
            else:
                station = hypatia.ground_stations[
                    node - hypatia.network.num_satellites]
                kinds.append("relay" if station.is_relay else "gs")
        # Endpoints are GSes; interior alternates sat/relay, never two
        # satellites in a row (there are no ISLs).
        assert kinds[0] == "gs" and kinds[-1] == "gs"
        for a, b in zip(kinds, kinds[1:]):
            assert not (a == "sat" and b == "sat")
        assert "relay" in kinds or kinds.count("sat") == 1

    def test_bent_pipe_rtt_higher_than_isl(self):
        """Appendix A Fig. 18(c): bent-pipe RTT exceeds the ISL RTT."""
        bent = self._bent_pipe_hypatia()
        isl = Hypatia.from_shell_name("K1", num_cities=100)
        pair_bent = bent.pair("Paris", "Moscow")
        pair_isl = isl.pair("Paris", "Moscow")
        bent_rtts = []
        isl_rtts = []
        for t in [0.0, 30.0, 60.0]:
            bent_rtts.append(bent.routing.pair_rtt_s(
                bent.snapshot(t), *pair_bent))
            isl_rtts.append(isl.routing.pair_rtt_s(
                isl.snapshot(t), *pair_isl))
        bent_mean = np.mean([r for r in bent_rtts if np.isfinite(r)])
        isl_mean = np.mean([r for r in isl_rtts if np.isfinite(r)])
        assert bent_mean > isl_mean


class TestPacketVsGeometry:
    def test_udp_one_way_delay_matches_path(self, small_network):
        engine = RoutingEngine(small_network)
        snap = small_network.snapshot(0.0)
        one_way = engine.pair_distance_m(snap, 1, 4) / 299_792_458.0
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=1e12,
                                         gsl_rate_bps=1e12))
        arrivals = []
        flow = UdpFlow(1, 4, rate_bps=100_000.0, stop_s=0.5)
        flow.install(sim)
        original = flow._on_receive

        def traced(packet):
            arrivals.append(sim.now - packet.sent_at_s)
            original(packet)

        sim._handlers[(sim.gs_node_id(4), flow.flow_id)] = traced
        sim.run(1.0)
        assert arrivals
        assert arrivals[0] == pytest.approx(one_way, rel=0.01)


class TestFluidVsPacketAgreement:
    def test_single_bottleneck_rates_agree(self, small_network):
        """The ablation check promised in DESIGN.md: on a small static
        scenario both engines find the same equilibrium shares."""
        flows = [(0, 3), (1, 3)]
        # Fluid: two elastic flows; shared bottleneck is the destination
        # GSL downlink of GS 3 if paths converge, else their own links.
        fluid = FluidSimulation(
            small_network, [FluidFlow(s, d) for s, d in flows],
            link_capacity_bps=5e6)
        fluid_result = fluid.run(duration_s=2.0, step_s=1.0)
        fluid_rates = fluid_result.flow_rates_bps[-1]

        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=5e6,
                                         gsl_rate_bps=5e6))
        tcps = [TcpNewRenoFlow(s, d).install(sim) for s, d in flows]
        sim.run(30.0)
        packet_rates = np.array([tcp.goodput_bps(30.0) for tcp in tcps])
        # TCP goodput (payload) runs below the fluid wire rate, and AIMD
        # splits a shared bottleneck in proportion to 1/RTT rather than
        # equally — so compare the aggregate, and require each flow to
        # get a non-trivial share rather than the exact max-min one.
        assert packet_rates.sum() > 0.5 * fluid_rates.sum()
        assert packet_rates.sum() < 1.05 * fluid_rates.sum()
        for fluid_rate, packet_rate in zip(fluid_rates, packet_rates):
            assert packet_rate > 0.1 * fluid_rate
            assert packet_rate < 1.05 * fluid_rates.sum()

    def test_aggregate_throughput_conserved(self, small_network):
        """Total TCP goodput cannot exceed the max-min total."""
        flows = [(0, 3), (1, 4), (2, 5)]
        fluid = FluidSimulation(
            small_network, [FluidFlow(s, d) for s, d in flows],
            link_capacity_bps=5e6)
        fluid_total = fluid.run(2.0, 1.0).flow_rates_bps[-1].sum()
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=5e6,
                                         gsl_rate_bps=5e6))
        tcps = [TcpNewRenoFlow(s, d).install(sim) for s, d in flows]
        sim.run(20.0)
        packet_total = sum(tcp.goodput_bps(20.0) for tcp in tcps)
        assert packet_total <= fluid_total * 1.05


class TestMultiFlowIsolation:
    def test_flows_on_disjoint_paths_unaffected(self, small_network):
        """A congested flow elsewhere must not disturb a disjoint flow."""
        sim = PacketSimulator(small_network)
        solo = TcpNewRenoFlow(0, 3).install(sim)
        sim.run(15.0)
        solo_goodput = solo.goodput_bps(15.0)

        sim2 = PacketSimulator(small_network)
        both_a = TcpNewRenoFlow(0, 3).install(sim2)
        TcpNewRenoFlow(4, 5).install(sim2)
        sim2.run(15.0)
        with_other = both_a.goodput_bps(15.0)
        # Paths 0-3 and 4-5 are geographically distant; allow 25% noise
        # for any shared ISLs.
        assert with_other > 0.75 * solo_goodput
