"""Tests for the ground segment: cities, stations, visibility."""

import math

import numpy as np
import pytest

from repro.constellations.builder import Constellation
from repro.constellations.definitions import KUIPER_K1
from repro.geo.constants import EARTH_MEAN_RADIUS_M
from repro.geo.coordinates import GeodeticPosition, geodetic_to_ecef
from repro.ground.cities import CITY_RECORDS, city_by_name, top_cities
from repro.ground.stations import (
    GroundStation,
    ground_stations_from_cities,
    relay_grid_between,
)
from repro.ground.visibility import (
    azimuth_elevation_deg,
    elevation_angles_deg,
    max_slant_range_m,
    visible_satellite_ids,
)


class TestCities:
    def test_exactly_100_cities(self):
        assert len(CITY_RECORDS) == 100
        assert len(top_cities(100)) == 100

    def test_ranks_sequential(self):
        ranks = [city.rank for city in top_cities(100)]
        assert ranks == list(range(1, 101))

    def test_populations_monotonically_nonincreasing(self):
        populations = [city.population for city in top_cities(100)]
        assert all(a >= b for a, b in zip(populations, populations[1:]))

    def test_names_unique(self):
        names = [city.name for city in top_cities(100)]
        assert len(set(names)) == 100

    def test_paper_focus_cities_present(self):
        for name in ["Rio de Janeiro", "Saint Petersburg", "Manila",
                     "Dalian", "Istanbul", "Nairobi", "Paris", "Luanda",
                     "Moscow", "Chicago", "Zhengzhou"]:
            city = city_by_name(name)
            assert city.name == name

    def test_tokyo_most_populous(self):
        assert top_cities(1)[0].name == "Tokyo"

    def test_unknown_city_raises(self):
        with pytest.raises(KeyError):
            city_by_name("Atlantis")

    def test_count_validation(self):
        with pytest.raises(ValueError):
            top_cities(0)
        with pytest.raises(ValueError):
            top_cities(101)

    def test_st_petersburg_high_latitude(self):
        # The root cause of the paper's Fig. 3(a) disruption: latitude
        # close to (above) Kuiper's inclination limit.
        assert city_by_name("Saint Petersburg").latitude_deg > 55.0

    def test_coordinates_in_range(self):
        for city in top_cities(100):
            assert -90 <= city.latitude_deg <= 90
            assert -180 <= city.longitude_deg <= 180


class TestGroundStations:
    def test_gids_sequential(self):
        stations = ground_stations_from_cities(count=10)
        assert [s.gid for s in stations] == list(range(10))

    def test_ecef_cached_and_consistent(self):
        station = ground_stations_from_cities(count=1)[0]
        expected = geodetic_to_ecef(station.position)
        np.testing.assert_allclose(station.ecef_m, expected)

    def test_not_relays_by_default(self):
        for station in ground_stations_from_cities(count=5):
            assert not station.is_relay

    def test_relay_grid_size_and_flags(self):
        a = GeodeticPosition(48.86, 2.35)   # Paris
        b = GeodeticPosition(55.76, 37.62)  # Moscow
        relays = relay_grid_between(a, b, rows=3, columns=4, first_gid=100)
        assert len(relays) == 12
        assert all(r.is_relay for r in relays)
        assert [r.gid for r in relays] == list(range(100, 112))

    def test_relay_grid_covers_endpoints_box(self):
        a = GeodeticPosition(48.86, 2.35)
        b = GeodeticPosition(55.76, 37.62)
        relays = relay_grid_between(a, b, rows=3, columns=3, margin_deg=2.0)
        lats = [r.latitude_deg for r in relays]
        lons = [r.longitude_deg for r in relays]
        assert min(lats) < 48.86 and max(lats) > 55.76
        assert min(lons) < 2.35 and max(lons) > 37.62

    def test_relay_grid_validation(self):
        a = GeodeticPosition(0.0, 0.0)
        with pytest.raises(ValueError):
            relay_grid_between(a, a, rows=1, columns=5)


class TestVisibility:
    def test_satellite_directly_overhead(self):
        station = GroundStation(0, "equator", GeodeticPosition(0.0, 0.0))
        overhead = station.ecef_m * (1 + 600_000.0 / np.linalg.norm(
            station.ecef_m))
        elevations = elevation_angles_deg(station, overhead[None, :])
        assert elevations[0] == pytest.approx(90.0, abs=0.01)

    def test_satellite_below_horizon(self):
        station = GroundStation(0, "equator", GeodeticPosition(0.0, 0.0))
        antipode = -station.ecef_m * 1.1
        elevations = elevation_angles_deg(station, antipode[None, :])
        assert elevations[0] < 0.0

    def test_visible_ids_filtering(self):
        station = GroundStation(0, "equator", GeodeticPosition(0.0, 0.0))
        constellation = Constellation([KUIPER_K1])
        positions = constellation.positions_ecef_m(0.0)
        loose = visible_satellite_ids(station, positions, 10.0)
        strict = visible_satellite_ids(station, positions, 40.0)
        assert len(strict) <= len(loose)
        assert set(strict).issubset(set(loose))
        assert len(loose) > 0

    def test_lower_min_elevation_sees_more(self):
        # The mechanism behind Telesat's latency advantage (paper §5.1).
        station = GroundStation(0, "nairobi", GeodeticPosition(-1.29, 36.82))
        constellation = Constellation([KUIPER_K1])
        positions = constellation.positions_ecef_m(0.0)
        counts = [len(visible_satellite_ids(station, positions, el))
                  for el in [10.0, 20.0, 30.0, 40.0]]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[0] > counts[-1]

    def test_azimuth_convention(self):
        # A satellite due east of an equatorial station has azimuth ~90.
        station = GroundStation(0, "origin", GeodeticPosition(0.0, 0.0))
        east_point = geodetic_to_ecef(GeodeticPosition(0.0, 10.0, 600_000.0))
        azimuths, elevations = azimuth_elevation_deg(
            station, east_point[None, :])
        assert azimuths[0] == pytest.approx(90.0, abs=0.5)
        assert elevations[0] > 0.0

    def test_azimuth_north(self):
        station = GroundStation(0, "origin", GeodeticPosition(0.0, 0.0))
        north_point = geodetic_to_ecef(GeodeticPosition(10.0, 0.0, 600_000.0))
        azimuths, _ = azimuth_elevation_deg(station, north_point[None, :])
        assert azimuths[0] == pytest.approx(0.0, abs=0.5)


class TestMaxSlantRange:
    def test_at_90_degrees_equals_altitude(self):
        assert max_slant_range_m(600_000.0, 90.0) == pytest.approx(
            600_000.0, rel=1e-9)

    def test_decreases_with_elevation(self):
        ranges = [max_slant_range_m(600_000.0, el)
                  for el in [0.0, 10.0, 25.0, 40.0, 90.0]]
        assert all(a > b for a, b in zip(ranges, ranges[1:]))

    def test_horizon_range_formula(self):
        # At l = 0 the slant range is sqrt((R+h)^2 - R^2).
        h = 600_000.0
        r = EARTH_MEAN_RADIUS_M
        expected = math.sqrt((r + h) ** 2 - r ** 2)
        assert max_slant_range_m(h, 0.0) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_slant_range_m(-1.0, 30.0)
        with pytest.raises(ValueError):
            max_slant_range_m(600_000.0, 91.0)

    def test_bounds_actual_gsl_lengths(self, kuiper_network):
        """No admissible GSL is ever longer than the analytic bound.

        The conservative bound places the station at the ellipsoid's polar
        radius while the satellite orbits at equatorial radius + altitude.
        """
        from repro.geo.constants import WGS72, WGS84
        snapshot = kuiper_network.snapshot(0.0)
        bound = max_slant_range_m(
            630_000.0, 30.0,
            earth_radius_m=WGS84.semi_minor_axis_m,
            orbit_radius_m=WGS72.semi_major_axis_m + 630_000.0)
        for edges in snapshot.gsl_edges.values():
            if edges.is_connected:
                assert edges.lengths_m.max() <= bound
