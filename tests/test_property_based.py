"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.rtt import ecdf
from repro.fluid.maxmin import max_min_fair_allocation
from repro.geo.coordinates import (
    GeodeticPosition,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
)
from repro.geo.distance import central_angle_rad, great_circle_distance_m
from repro.orbits.kepler import (
    KeplerianElements,
    eccentric_to_mean_anomaly,
    mean_to_eccentric_anomaly,
    orbital_period_s,
    semi_major_axis_from_period,
    wrap_angle,
)
from repro.orbits.propagation import propagate_to_eci
from repro.orbits.tle import generate_tle, parse_tle
from repro.simulation.events import EventScheduler

finite_angle = st.floats(min_value=-100.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)
latitude = st.floats(min_value=-89.9, max_value=89.9)
longitude = st.floats(min_value=-179.9, max_value=179.9)
altitude = st.floats(min_value=0.0, max_value=2_000_000.0)
eccentricity = st.floats(min_value=0.0, max_value=0.9)


class TestAngleProperties:
    @given(finite_angle)
    def test_wrap_angle_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert 0.0 <= wrapped < 2 * math.pi

    @given(finite_angle)
    def test_wrap_angle_idempotent(self, angle):
        wrapped = wrap_angle(angle)
        assert wrap_angle(wrapped) == pytest.approx(wrapped, abs=1e-12)

    @given(finite_angle)
    def test_wrap_preserves_angle_mod_two_pi(self, angle):
        wrapped = wrap_angle(angle)
        assert math.cos(wrapped) == pytest.approx(math.cos(angle), abs=1e-6)
        assert math.sin(wrapped) == pytest.approx(math.sin(angle), abs=1e-6)


class TestKeplerProperties:
    @given(st.floats(min_value=0.0, max_value=2 * math.pi - 1e-9),
           eccentricity)
    def test_keplers_equation_round_trip(self, mean_anomaly, ecc):
        big_e = mean_to_eccentric_anomaly(mean_anomaly, ecc)
        back = eccentric_to_mean_anomaly(big_e, ecc)
        assert back == pytest.approx(mean_anomaly, abs=1e-8)

    @given(st.floats(min_value=6.6e6, max_value=5e7))
    def test_period_axis_inverse(self, semi_major_axis):
        period = orbital_period_s(semi_major_axis)
        assert semi_major_axis_from_period(period) == pytest.approx(
            semi_major_axis, rel=1e-10)

    @given(altitude, st.floats(min_value=0.0, max_value=180.0),
           st.floats(min_value=0.0, max_value=359.99),
           st.floats(min_value=0.0, max_value=359.99))
    @settings(max_examples=30)
    def test_circular_orbit_radius_invariant(self, alt, incl, raan, anomaly):
        assume(alt > 100_000.0)
        el = KeplerianElements.circular(alt, incl, raan, anomaly)
        for t in [0.0, 1000.0]:
            state = propagate_to_eci(el, t)
            assert state.radius_m == pytest.approx(el.semi_major_axis_m,
                                                   rel=1e-9)


class TestGeoProperties:
    @given(latitude, longitude, altitude)
    @settings(max_examples=50)
    def test_geodetic_ecef_round_trip(self, lat, lon, alt):
        original = GeodeticPosition(lat, lon, alt)
        back = ecef_to_geodetic(geodetic_to_ecef(original))
        assert back.latitude_deg == pytest.approx(lat, abs=1e-7)
        assert back.longitude_deg == pytest.approx(lon, abs=1e-7)
        assert back.altitude_m == pytest.approx(alt, abs=1e-2)

    @given(latitude, longitude, latitude, longitude)
    def test_great_circle_symmetry(self, lat1, lon1, lat2, lon2):
        a = GeodeticPosition(lat1, lon1)
        b = GeodeticPosition(lat2, lon2)
        assert great_circle_distance_m(a, b) == pytest.approx(
            great_circle_distance_m(b, a), rel=1e-12)

    @given(latitude, longitude, latitude, longitude, latitude, longitude)
    @settings(max_examples=50)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        a = GeodeticPosition(lat1, lon1)
        b = GeodeticPosition(lat2, lon2)
        c = GeodeticPosition(lat3, lon3)
        assert central_angle_rad(a, c) <= (
            central_angle_rad(a, b) + central_angle_rad(b, c) + 1e-9)

    @given(st.floats(min_value=-1e7, max_value=1e7),
           st.floats(min_value=-1e7, max_value=1e7),
           st.floats(min_value=-1e7, max_value=1e7),
           st.floats(min_value=0.0, max_value=1e5))
    def test_eci_to_ecef_preserves_norm(self, x, y, z, t):
        position = np.array([x, y, z])
        converted = eci_to_ecef(position, t)
        assert np.linalg.norm(converted) == pytest.approx(
            np.linalg.norm(position), rel=1e-12, abs=1e-9)


class TestTleProperties:
    @given(altitude, st.floats(min_value=0.0, max_value=179.99),
           st.floats(min_value=0.0, max_value=359.99),
           st.floats(min_value=0.0, max_value=359.99))
    @settings(max_examples=40)
    def test_tle_round_trip_any_circular_orbit(self, alt, incl, raan,
                                               anomaly):
        assume(alt > 150_000.0)
        el = KeplerianElements.circular(alt, incl, raan, anomaly)
        tle = generate_tle(el, "prop-test")
        parsed, _, _ = parse_tle(*tle.as_lines())
        assert parsed.semi_major_axis_m == pytest.approx(
            el.semi_major_axis_m, rel=1e-6)
        assert parsed.inclination_rad == pytest.approx(
            el.inclination_rad, abs=2e-5)
        assert parsed.raan_rad == pytest.approx(el.raan_rad, abs=2e-5)


class TestMaxMinProperties:
    @st.composite
    def _scenario(draw):
        num_links = draw(st.integers(min_value=1, max_value=6))
        capacities = {
            i: draw(st.floats(min_value=0.1, max_value=100.0))
            for i in range(num_links)
        }
        num_flows = draw(st.integers(min_value=1, max_value=10))
        flows = []
        for _ in range(num_flows):
            size = draw(st.integers(min_value=1, max_value=num_links))
            flows.append(list(draw(st.permutations(range(num_links))))[:size])
        return capacities, flows

    @given(_scenario())
    @settings(max_examples=60)
    def test_feasible_and_nonnegative(self, scenario):
        capacities, flows = scenario
        rates = max_min_fair_allocation(capacities, flows)
        assert (rates >= 0.0).all()
        loads = {link: 0.0 for link in capacities}
        for flow, rate in zip(flows, rates):
            for link in flow:
                loads[link] += rate
        for link, load in loads.items():
            assert load <= capacities[link] * (1 + 1e-6)

    @given(_scenario())
    @settings(max_examples=60)
    def test_every_flow_has_a_saturated_link(self, scenario):
        """Pareto optimality: each flow's rate is limited by some link
        that is (numerically) fully used."""
        capacities, flows = scenario
        rates = max_min_fair_allocation(capacities, flows)
        loads = {link: 0.0 for link in capacities}
        for flow, rate in zip(flows, rates):
            for link in flow:
                loads[link] += rate
        for flow in flows:
            assert any(loads[link] >= capacities[link] * (1 - 1e-6)
                       for link in flow)


class TestEcdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=100))
    def test_ecdf_monotone_and_normalized(self, values):
        xs, ys = ecdf(values)
        assert (np.diff(xs) >= 0).all()
        assert (np.diff(ys) >= 0).all()
        assert ys[-1] == pytest.approx(1.0)
        assert ys[0] == pytest.approx(1.0 / len(values))


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sched = EventScheduler()
        fired = []
        for delay in delays:
            sched.schedule(delay, lambda: fired.append(sched.now))
        sched.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
