"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.rtt import ecdf
from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.fluid.maxmin import max_min_fair_allocation
from repro.ground.weather import RainEvent, WeatherModel
from repro.geo.coordinates import (
    GeodeticPosition,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
)
from repro.geo.distance import central_angle_rad, great_circle_distance_m
from repro.orbits.kepler import (
    KeplerianElements,
    eccentric_to_mean_anomaly,
    mean_to_eccentric_anomaly,
    orbital_period_s,
    semi_major_axis_from_period,
    wrap_angle,
)
from repro.orbits.propagation import propagate_to_eci
from repro.orbits.tle import generate_tle, parse_tle
from repro.simulation.events import EventScheduler

finite_angle = st.floats(min_value=-100.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)
latitude = st.floats(min_value=-89.9, max_value=89.9)
longitude = st.floats(min_value=-179.9, max_value=179.9)
altitude = st.floats(min_value=0.0, max_value=2_000_000.0)
eccentricity = st.floats(min_value=0.0, max_value=0.9)


class TestAngleProperties:
    @given(finite_angle)
    def test_wrap_angle_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert 0.0 <= wrapped < 2 * math.pi

    @given(finite_angle)
    def test_wrap_angle_idempotent(self, angle):
        wrapped = wrap_angle(angle)
        assert wrap_angle(wrapped) == pytest.approx(wrapped, abs=1e-12)

    @given(finite_angle)
    def test_wrap_preserves_angle_mod_two_pi(self, angle):
        wrapped = wrap_angle(angle)
        assert math.cos(wrapped) == pytest.approx(math.cos(angle), abs=1e-6)
        assert math.sin(wrapped) == pytest.approx(math.sin(angle), abs=1e-6)


class TestKeplerProperties:
    @given(st.floats(min_value=0.0, max_value=2 * math.pi - 1e-9),
           eccentricity)
    def test_keplers_equation_round_trip(self, mean_anomaly, ecc):
        big_e = mean_to_eccentric_anomaly(mean_anomaly, ecc)
        back = eccentric_to_mean_anomaly(big_e, ecc)
        assert back == pytest.approx(mean_anomaly, abs=1e-8)

    @given(st.floats(min_value=6.6e6, max_value=5e7))
    def test_period_axis_inverse(self, semi_major_axis):
        period = orbital_period_s(semi_major_axis)
        assert semi_major_axis_from_period(period) == pytest.approx(
            semi_major_axis, rel=1e-10)

    @given(altitude, st.floats(min_value=0.0, max_value=180.0),
           st.floats(min_value=0.0, max_value=359.99),
           st.floats(min_value=0.0, max_value=359.99))
    @settings(max_examples=30)
    def test_circular_orbit_radius_invariant(self, alt, incl, raan, anomaly):
        assume(alt > 100_000.0)
        el = KeplerianElements.circular(alt, incl, raan, anomaly)
        for t in [0.0, 1000.0]:
            state = propagate_to_eci(el, t)
            assert state.radius_m == pytest.approx(el.semi_major_axis_m,
                                                   rel=1e-9)


class TestGeoProperties:
    @given(latitude, longitude, altitude)
    @settings(max_examples=50)
    def test_geodetic_ecef_round_trip(self, lat, lon, alt):
        original = GeodeticPosition(lat, lon, alt)
        back = ecef_to_geodetic(geodetic_to_ecef(original))
        assert back.latitude_deg == pytest.approx(lat, abs=1e-7)
        assert back.longitude_deg == pytest.approx(lon, abs=1e-7)
        assert back.altitude_m == pytest.approx(alt, abs=1e-2)

    @given(latitude, longitude, latitude, longitude)
    def test_great_circle_symmetry(self, lat1, lon1, lat2, lon2):
        a = GeodeticPosition(lat1, lon1)
        b = GeodeticPosition(lat2, lon2)
        assert great_circle_distance_m(a, b) == pytest.approx(
            great_circle_distance_m(b, a), rel=1e-12)

    @given(latitude, longitude, latitude, longitude, latitude, longitude)
    @settings(max_examples=50)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        a = GeodeticPosition(lat1, lon1)
        b = GeodeticPosition(lat2, lon2)
        c = GeodeticPosition(lat3, lon3)
        assert central_angle_rad(a, c) <= (
            central_angle_rad(a, b) + central_angle_rad(b, c) + 1e-9)

    @given(st.floats(min_value=-1e7, max_value=1e7),
           st.floats(min_value=-1e7, max_value=1e7),
           st.floats(min_value=-1e7, max_value=1e7),
           st.floats(min_value=0.0, max_value=1e5))
    def test_eci_to_ecef_preserves_norm(self, x, y, z, t):
        position = np.array([x, y, z])
        converted = eci_to_ecef(position, t)
        assert np.linalg.norm(converted) == pytest.approx(
            np.linalg.norm(position), rel=1e-12, abs=1e-9)


class TestTleProperties:
    @given(altitude, st.floats(min_value=0.0, max_value=179.99),
           st.floats(min_value=0.0, max_value=359.99),
           st.floats(min_value=0.0, max_value=359.99))
    @settings(max_examples=40)
    def test_tle_round_trip_any_circular_orbit(self, alt, incl, raan,
                                               anomaly):
        assume(alt > 150_000.0)
        el = KeplerianElements.circular(alt, incl, raan, anomaly)
        tle = generate_tle(el, "prop-test")
        parsed, _, _ = parse_tle(*tle.as_lines())
        assert parsed.semi_major_axis_m == pytest.approx(
            el.semi_major_axis_m, rel=1e-6)
        assert parsed.inclination_rad == pytest.approx(
            el.inclination_rad, abs=2e-5)
        assert parsed.raan_rad == pytest.approx(el.raan_rad, abs=2e-5)


class TestMaxMinProperties:
    @st.composite
    def _scenario(draw):
        num_links = draw(st.integers(min_value=1, max_value=6))
        capacities = {
            i: draw(st.floats(min_value=0.1, max_value=100.0))
            for i in range(num_links)
        }
        num_flows = draw(st.integers(min_value=1, max_value=10))
        flows = []
        for _ in range(num_flows):
            size = draw(st.integers(min_value=1, max_value=num_links))
            flows.append(list(draw(st.permutations(range(num_links))))[:size])
        return capacities, flows

    @given(_scenario())
    @settings(max_examples=60)
    def test_feasible_and_nonnegative(self, scenario):
        capacities, flows = scenario
        rates = max_min_fair_allocation(capacities, flows)
        assert (rates >= 0.0).all()
        loads = {link: 0.0 for link in capacities}
        for flow, rate in zip(flows, rates):
            for link in flow:
                loads[link] += rate
        for link, load in loads.items():
            assert load <= capacities[link] * (1 + 1e-6)

    @given(_scenario())
    @settings(max_examples=60)
    def test_every_flow_has_a_saturated_link(self, scenario):
        """Pareto optimality: each flow's rate is limited by some link
        that is (numerically) fully used."""
        capacities, flows = scenario
        rates = max_min_fair_allocation(capacities, flows)
        loads = {link: 0.0 for link in capacities}
        for flow, rate in zip(flows, rates):
            for link in flow:
                loads[link] += rate
        for flow in flows:
            assert any(loads[link] >= capacities[link] * (1 - 1e-6)
                       for link in flow)

    # --- Repeated links + demand caps, against both kernels (ISSUE 6).

    @st.composite
    def _rich_scenario(draw):
        """Random capacities/paths/demands where loop paths (repeated
        link traversals) are common."""
        num_links = draw(st.integers(min_value=1, max_value=6))
        capacities = {
            i: draw(st.floats(min_value=0.1, max_value=100.0))
            for i in range(num_links)
        }
        num_flows = draw(st.integers(min_value=1, max_value=10))
        flows = [
            draw(st.lists(st.integers(min_value=0,
                                      max_value=num_links - 1),
                          min_size=1, max_size=6))
            for _ in range(num_flows)
        ]
        demands = draw(st.one_of(
            st.none(),
            st.lists(st.floats(min_value=0.05, max_value=150.0),
                     min_size=num_flows, max_size=num_flows)))
        return capacities, flows, demands

    @pytest.mark.parametrize("allocate", ["reference", "vectorized"])
    @given(_rich_scenario())
    @settings(max_examples=60)
    def test_multiplicity_weighted_feasibility(self, allocate, scenario):
        """Per link, ``sum(rate * traversal_multiplicity) <= capacity`` —
        the invariant the old set-based allocator violated."""
        from repro.fluid.vectorized import max_min_fair_allocation_vectorized
        kernel = (max_min_fair_allocation if allocate == "reference"
                  else max_min_fair_allocation_vectorized)
        capacities, flows, demands = scenario
        rates = kernel(capacities, flows, demands)
        assert (rates >= 0.0).all()
        loads = {link: 0.0 for link in capacities}
        for flow, rate in zip(flows, rates):
            for link in flow:  # one entry per traversal
                loads[link] += rate
        for link, load in loads.items():
            assert load <= capacities[link] * (1 + 1e-6)

    @pytest.mark.parametrize("allocate", ["reference", "vectorized"])
    @given(_rich_scenario())
    @settings(max_examples=60)
    def test_pareto_optimal(self, allocate, scenario):
        """No flow can be raised without lowering a flow with an equal or
        smaller rate: every flow is demand-capped or has a saturated
        on-path link where its rate is maximal."""
        from repro.fluid.vectorized import max_min_fair_allocation_vectorized
        kernel = (max_min_fair_allocation if allocate == "reference"
                  else max_min_fair_allocation_vectorized)
        capacities, flows, demands = scenario
        rates = kernel(capacities, flows, demands)
        loads = {link: 0.0 for link in capacities}
        on_link = {link: [] for link in capacities}
        for i, (flow, rate) in enumerate(zip(flows, rates)):
            for link in flow:
                loads[link] += rate
            for link in set(flow):
                on_link[link].append(i)
        for i, flow in enumerate(flows):
            if demands is not None and rates[i] >= demands[i] * (1 - 1e-6):
                continue
            saturated = [link for link in flow
                         if loads[link] >= capacities[link] * (1 - 1e-6)]
            assert saturated, f"flow {i} unconstrained"
            assert any(
                rates[i] >= max(rates[j] for j in on_link[link]) - 1e-6
                for link in saturated)

    @given(_rich_scenario())
    @settings(max_examples=80)
    def test_vectorized_kernel_matches_oracle(self, scenario):
        from repro.fluid.vectorized import max_min_fair_allocation_vectorized
        capacities, flows, demands = scenario
        expected = max_min_fair_allocation(capacities, flows, demands)
        got = max_min_fair_allocation_vectorized(capacities, flows,
                                                 demands)
        assert np.array_equal(expected, got)


class TestEcdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=100))
    def test_ecdf_monotone_and_normalized(self, values):
        xs, ys = ecdf(values)
        assert (np.diff(xs) >= 0).all()
        assert (np.diff(ys) >= 0).all()
        assert ys[-1] == pytest.approx(1.0)
        assert ys[0] == pytest.approx(1.0 / len(values))


event_time = st.floats(min_value=0.0, max_value=1000.0,
                       allow_nan=False, allow_infinity=False)
probe_time = st.floats(min_value=-100.0, max_value=1100.0,
                       allow_nan=False, allow_infinity=False)


@st.composite
def fault_events(draw):
    kind = draw(st.sampled_from(list(FaultKind)))
    start = draw(event_time)
    end = start + draw(st.floats(min_value=1e-3, max_value=200.0))
    if kind is FaultKind.SATELLITE_OUTAGE:
        return FaultEvent.satellite_outage(
            draw(st.integers(min_value=0, max_value=99)), start, end)
    if kind is FaultKind.ISL_CUT:
        a = draw(st.integers(min_value=0, max_value=99))
        b = draw(st.integers(min_value=0, max_value=99).filter(
            lambda x: x != a))
        return FaultEvent.isl_cut(a, b, start, end)
    if kind is FaultKind.GSL_CUT:
        return FaultEvent.gsl_cut(
            draw(st.integers(min_value=0, max_value=99)), start, end)
    if kind is FaultKind.GSL_ATTENUATION:
        return FaultEvent.gsl_attenuation(
            draw(st.integers(min_value=0, max_value=99)), start, end,
            draw(st.floats(min_value=0.1, max_value=90.0)))
    rate = draw(st.floats(min_value=1e-6, max_value=1.0))
    target_gid = draw(st.booleans())
    if target_gid:
        gid = draw(st.integers(min_value=0, max_value=99))
        isl = None
    else:
        gid = None
        a = draw(st.integers(min_value=0, max_value=99))
        b = draw(st.integers(min_value=0, max_value=99).filter(
            lambda x: x != a))
        isl = (a, b)
    if kind is FaultKind.PACKET_LOSS:
        return FaultEvent.packet_loss(start, end, rate, isl=isl, gid=gid)
    return FaultEvent.packet_corruption(start, end, rate, isl=isl, gid=gid)


@st.composite
def rain_events(draw):
    start = draw(event_time)
    return RainEvent(
        gid=draw(st.integers(min_value=0, max_value=9)),
        start_s=start,
        end_s=start + draw(st.floats(min_value=1e-3, max_value=200.0)),
        elevation_penalty_deg=draw(st.floats(min_value=0.0, max_value=90.0)))


class TestFaultScheduleProperties:
    @given(fault_events(), probe_time)
    def test_no_activity_outside_half_open_interval(self, event, t):
        assert event.active_at(t) == (event.start_s <= t < event.end_s)

    @given(st.lists(fault_events(), max_size=12), probe_time)
    @settings(max_examples=60)
    def test_schedule_queries_confined_to_active_events(self, events, t):
        schedule = FaultSchedule(events)
        active = schedule.active_at(t)
        assert all(e.active_at(t) for e in active)
        assert set(active) == {e for e in events if e.active_at(t)}
        for sat in schedule.failed_satellites_at(t):
            assert any(e.kind is FaultKind.SATELLITE_OUTAGE
                       and e.satellite == sat for e in active)
        if not active:
            assert not schedule.failed_satellites_at(t)
            assert not schedule.cut_isls_at(t)
            assert not schedule.cut_gids_at(t)

    @given(st.lists(fault_events(), max_size=12), st.randoms(),
           st.integers(min_value=0, max_value=9), probe_time)
    @settings(max_examples=60)
    def test_stacking_is_order_independent(self, events, rng, gid, t):
        shuffled = list(events)
        rng.shuffle(shuffled)
        a, b = FaultSchedule(events), FaultSchedule(shuffled)
        assert a.events == b.events
        assert a == b
        assert a.elevation_penalty_deg(gid, t) == pytest.approx(
            b.elevation_penalty_deg(gid, t))

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=8),
           st.randoms())
    def test_combined_rate_order_independent_and_bounded(self, rates, rng):
        events = tuple(FaultEvent.packet_loss(0.0, 1.0, r, gid=0)
                       for r in rates if r > 0.0)
        shuffled = list(events)
        rng.shuffle(shuffled)
        schedule = FaultSchedule()
        combined = schedule.combined_rate(events, 0.5)
        assert combined == pytest.approx(
            schedule.combined_rate(tuple(shuffled), 0.5))
        assert 0.0 <= combined <= 1.0
        if any(e.rate == 1.0 for e in events):
            assert combined == 1.0

    @given(st.integers(min_value=0, max_value=2**31), st.integers(
        min_value=1, max_value=300), st.integers(min_value=1, max_value=50))
    @settings(max_examples=25)
    def test_synthetic_reproducible_and_sorted(self, seed, num_sats,
                                               num_stations):
        kwargs = dict(num_satellites=num_sats, num_stations=num_stations,
                      duration_s=200.0, seed=seed,
                      satellite_outage_probability=0.3,
                      gsl_cut_probability=0.3, loss_probability=0.3)
        a = FaultSchedule.synthetic(**kwargs)
        assert a == FaultSchedule.synthetic(**kwargs)
        assert a.seed == seed
        starts = [event.start_s for event in a]
        assert starts == sorted(starts)
        for event in a:
            if event.satellite is not None:
                assert 0 <= event.satellite < num_sats
            if event.gid is not None:
                assert 0 <= event.gid < num_stations

    @given(st.lists(fault_events(), max_size=10),
           st.lists(fault_events(), max_size=10))
    @settings(max_examples=40)
    def test_dict_round_trip_any_schedule(self, events_a, events_b):
        schedule = FaultSchedule(events_a, seed=3).merged(
            FaultSchedule(events_b, seed=8))
        assert FaultSchedule.from_dict(schedule.as_dict()) == schedule


class TestWeatherModelProperties:
    @given(rain_events(), probe_time)
    def test_no_penalty_outside_half_open_interval(self, event, t):
        model = WeatherModel([event])
        active = event.start_s <= t < event.end_s
        assert event.active_at(t) == active
        expected = event.elevation_penalty_deg if active else 0.0
        assert model.penalty_deg(event.gid, t) == pytest.approx(expected)

    @given(st.lists(rain_events(), max_size=10), st.randoms(),
           st.integers(min_value=0, max_value=9), probe_time)
    @settings(max_examples=60)
    def test_penalty_stacking_order_independent(self, events, rng, gid, t):
        shuffled = list(events)
        rng.shuffle(shuffled)
        a, b = WeatherModel(events), WeatherModel(shuffled)
        assert a.penalty_deg(gid, t) == pytest.approx(b.penalty_deg(gid, t))
        expected = sum(e.elevation_penalty_deg for e in events
                       if e.gid == gid and e.active_at(t))
        assert a.penalty_deg(gid, t) == pytest.approx(expected)
        assert a.min_elevation_deg(gid, 25.0, t) <= 90.0

    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=25)
    def test_synthetic_reproducible(self, seed, num_stations):
        a = WeatherModel.synthetic(num_stations, 300.0, seed=seed,
                                   storm_probability=0.5)
        b = WeatherModel.synthetic(num_stations, 300.0, seed=seed,
                                   storm_probability=0.5)
        assert a.iter_events() == b.iter_events()
        # And the fault-schedule view agrees event for event.
        fa = FaultSchedule.from_weather(a)
        assert fa == FaultSchedule.from_weather(b)
        assert fa.num_events == a.num_events


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sched = EventScheduler()
        fired = []
        for delay in delays:
            sched.schedule(delay, lambda: fired.append(sched.now))
        sched.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestSnapshotTimesProperties:
    """The snapshot grid (paper §3.1): ticks 0, step, 2*step, ... strictly
    below the duration, robust to float rounding in ``duration / step``.

    Defining property: ``snapshot_times(d, s)`` is exactly the ticks
    ``k * s`` (evaluated in float64) that compare ``< d`` — the naive
    ``arange(ceil(d / s)) * s`` can both overshoot (8.2 / 0.1 rounds the
    quotient up, so the last tick lands at 8.200000000000001 >= d) and
    the ceil can round a tick short.
    """

    # (duration, step) -> expected tick count, including the historically
    # awkward float combinations from the regression reports.
    NAMED_CASES = [
        (0.7, 0.1, 7),
        (8.2, 0.1, 82),
        (1e4, 0.1, 100_000),
        (1.0, 0.1, 10),
        (0.35, 0.1, 4),
    ]

    def test_named_awkward_combos(self):
        from repro.topology.dynamic_state import snapshot_times
        for duration, step, expected in self.NAMED_CASES:
            times = snapshot_times(duration, step)
            assert len(times) == expected, (duration, step)
            assert times[-1] < duration

    @given(st.floats(min_value=1e-2, max_value=1e4),
           st.floats(min_value=1e-3, max_value=1e2))
    @settings(max_examples=300, deadline=None)
    def test_grid_confinement_and_ceil_consistency(self, duration, step):
        from repro.topology.dynamic_state import snapshot_times
        assume(duration / step <= 3e5)  # keep the grid test-sized
        times = snapshot_times(duration, step)
        # Strictly inside [0, duration), starting at 0, on the exact grid.
        assert times[0] == 0.0
        assert np.all(times < duration)
        assert np.array_equal(times, np.arange(len(times)) * step)
        # Ceil-consistent count: exactly the k with float64 k*step < d
        # (the count can differ from ceil(d/s) by the rounding of the
        # quotient, never by more than one tick), checked scalar-wise
        # around the boundary.
        approx = int(np.ceil(duration / step))
        assert abs(len(times) - approx) <= 1
        for k in range(max(len(times) - 2, 0), len(times) + 2):
            inside = np.float64(k) * np.float64(step) < duration
            assert inside == (k < len(times))

    @given(st.floats(max_value=0.0, allow_nan=False),
           st.floats(min_value=1e-3, max_value=1e2))
    def test_nonpositive_duration_rejected(self, duration, step):
        from repro.topology.dynamic_state import snapshot_times
        with pytest.raises(ValueError):
            snapshot_times(duration, step)
