"""Tests for constellation definitions (paper Table 1) and the builder."""

import numpy as np
import pytest

from repro.constellations.builder import Constellation
from repro.constellations.definitions import (
    ALL_SHELLS,
    KUIPER_K1,
    KUIPER_SHELLS,
    STARLINK_S1,
    STARLINK_SHELLS,
    TELESAT_SHELLS,
    TELESAT_T1,
    shell_by_name,
)
from repro.orbits.shell import SatelliteIndex, Shell


class TestTable1:
    """The exact shell parameters of paper Table 1."""

    def test_starlink_phase1_totals(self):
        assert STARLINK_SHELLS.total_satellites == 4409

    def test_starlink_s1(self):
        assert STARLINK_S1.num_orbits == 72
        assert STARLINK_S1.satellites_per_orbit == 22
        assert STARLINK_S1.altitude_km == 550.0
        assert STARLINK_S1.inclination_deg == 53.0

    def test_kuiper_totals(self):
        assert KUIPER_SHELLS.total_satellites == 3236

    def test_kuiper_k1(self):
        assert KUIPER_K1.num_orbits == 34
        assert KUIPER_K1.satellites_per_orbit == 34
        assert KUIPER_K1.altitude_km == 630.0
        assert KUIPER_K1.inclination_deg == 51.9

    def test_kuiper_all_inclinations_under_52(self):
        # Paper §2.2: "Kuiper entirely eschews connectivity near the
        # poles, with all its shells having inclinations under 52 deg."
        for shell in KUIPER_SHELLS.shells:
            assert shell.inclination_deg < 52.0

    def test_telesat_t1_polar(self):
        assert TELESAT_T1.inclination_deg == pytest.approx(98.98)
        assert TELESAT_T1.num_orbits == 27
        assert TELESAT_T1.satellites_per_orbit == 13

    def test_min_elevations(self):
        # Paper §5.1: Telesat 10, Starlink 25, Kuiper 30.
        assert TELESAT_SHELLS.min_elevation_deg == 10.0
        assert STARLINK_SHELLS.min_elevation_deg == 25.0
        assert KUIPER_SHELLS.min_elevation_deg == 30.0

    def test_four_isls_everywhere(self):
        for spec in ALL_SHELLS.values():
            assert spec.isls_per_satellite == 4

    def test_telesat_fewest_satellites(self):
        # Paper §5.1 compares the simulated first shells: T1 has less than
        # a third of K1's and less than a fourth of S1's satellites.
        t1 = TELESAT_T1.total_satellites
        assert t1 == 351
        assert t1 < KUIPER_K1.total_satellites / 3
        assert t1 < STARLINK_S1.total_satellites / 4

    def test_telesat_totals(self):
        assert TELESAT_SHELLS.total_satellites == 1671

    def test_shell_lookup(self):
        assert shell_by_name("S3").num_orbits == 8
        assert shell_by_name("K2").satellites_per_orbit == 36
        with pytest.raises(KeyError):
            shell_by_name("Z9")

    def test_first_shells(self):
        assert STARLINK_SHELLS.first_shell().name == "S1"
        assert KUIPER_SHELLS.first_shell().name == "K1"
        assert TELESAT_SHELLS.first_shell().name == "T1"


class TestConstellationBuilder:
    def test_satellite_count(self, small_constellation):
        assert len(small_constellation) == 100
        assert small_constellation.num_satellites == 100

    def test_global_ids_sequential(self, small_constellation):
        for i, sat in enumerate(small_constellation.satellites):
            assert sat.satellite_id == i

    def test_satellite_id_lookup(self, small_constellation):
        sat_id = small_constellation.satellite_id(
            "X1", SatelliteIndex(3, 5))
        assert sat_id == 3 * 10 + 5
        assert small_constellation.satellite(sat_id).index == \
            SatelliteIndex(3, 5)

    def test_multi_shell_offsets(self, small_shell):
        second = Shell(name="X2", num_orbits=4, satellites_per_orbit=4,
                       altitude_m=700_000.0, inclination_deg=70.0)
        constellation = Constellation([small_shell, second])
        assert constellation.num_satellites == 100 + 16
        first_of_second = constellation.satellite_id(
            "X2", SatelliteIndex(0, 0))
        assert first_of_second == 100
        assert constellation.shell_of(105).name == "X2"
        assert constellation.shell_of(99).name == "X1"

    def test_duplicate_shell_names_rejected(self, small_shell):
        with pytest.raises(ValueError):
            Constellation([small_shell, small_shell])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Constellation([])

    def test_positions_shape(self, small_constellation):
        positions = small_constellation.positions_ecef_m(0.0)
        assert positions.shape == (100, 3)

    def test_positions_at_orbit_radius(self, small_constellation):
        positions = small_constellation.positions_ecef_m(100.0)
        radii = np.linalg.norm(positions, axis=1)
        expected = small_constellation.satellites[0].elements.semi_major_axis_m
        np.testing.assert_allclose(radii, expected, rtol=1e-12)

    def test_vectorized_matches_scalar_propagation(self, small_constellation):
        from repro.orbits.propagation import propagate_to_ecef
        t = 777.0
        batch = small_constellation.positions_ecef_m(t)
        for sat_id in [0, 17, 99]:
            scalar = propagate_to_ecef(
                small_constellation.satellites[sat_id].elements, t).position_m
            np.testing.assert_allclose(batch[sat_id], scalar, atol=1e-3)

    def test_single_position_accessor(self, small_constellation):
        batch = small_constellation.positions_ecef_m(50.0)
        single = small_constellation.position_ecef_m(10, 50.0)
        np.testing.assert_allclose(single, batch[10])

    def test_satellites_move(self, small_constellation):
        p0 = small_constellation.positions_ecef_m(0.0)
        p1 = small_constellation.positions_ecef_m(1.0)
        displacement = np.linalg.norm(p1 - p0, axis=1)
        # ~7.6 km/s orbital speed (minus Earth-rotation component).
        assert (displacement > 5000).all()
        assert (displacement < 9000).all()

    def test_eci_positions_ignore_earth_rotation(self, small_constellation):
        eci = small_constellation.positions_eci_m(0.0)
        ecef = small_constellation.positions_ecef_m(0.0)
        np.testing.assert_allclose(eci, ecef)  # frames aligned at epoch

    def test_tles_generated_for_all(self, small_constellation):
        tles = small_constellation.generate_tles()
        assert len(tles) == 100
        assert tles[5].name == small_constellation.satellites[5].name

    def test_describe_mentions_shells(self, small_constellation):
        text = small_constellation.describe()
        assert "X1" in text
        assert "100" in text
