"""Tests for coordinate frames and conversions."""

import math

import numpy as np
import pytest

from repro.geo.constants import (
    EARTH_ROTATION_RATE_RAD_PER_S,
    SIDEREAL_DAY_S,
    WGS72,
    WGS84,
)
from repro.geo.coordinates import (
    GeodeticPosition,
    ecef_to_eci,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    gmst_angle_rad,
    rotation_about_z,
    topocentric_enu,
)


class TestGeodeticPosition:
    def test_valid_position(self):
        pos = GeodeticPosition(45.0, -120.0, 1000.0)
        assert pos.latitude_deg == 45.0
        assert pos.longitude_deg == -120.0
        assert pos.altitude_m == 1000.0

    def test_latitude_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GeodeticPosition(91.0, 0.0)
        with pytest.raises(ValueError):
            GeodeticPosition(-90.5, 0.0)

    def test_longitude_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GeodeticPosition(0.0, 181.0)

    def test_radian_properties(self):
        pos = GeodeticPosition(90.0, -180.0)
        assert pos.latitude_rad == pytest.approx(math.pi / 2)
        assert pos.longitude_rad == pytest.approx(-math.pi)


class TestGmst:
    def test_zero_at_epoch_by_default(self):
        assert gmst_angle_rad(0.0) == 0.0

    def test_full_rotation_after_sidereal_day(self):
        angle = gmst_angle_rad(SIDEREAL_DAY_S)
        assert angle == pytest.approx(0.0, abs=1e-9) or \
            angle == pytest.approx(2 * math.pi, abs=1e-9)

    def test_quarter_rotation(self):
        angle = gmst_angle_rad(SIDEREAL_DAY_S / 4)
        assert angle == pytest.approx(math.pi / 2, rel=1e-9)

    def test_epoch_offset_carries_through(self):
        assert gmst_angle_rad(0.0, gmst_at_epoch_rad=1.0) == pytest.approx(1.0)

    def test_wraps_to_two_pi(self):
        angle = gmst_angle_rad(10 * SIDEREAL_DAY_S + 100.0)
        assert 0.0 <= angle < 2 * math.pi


class TestRotationAboutZ:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(rotation_about_z(0.0), np.eye(3))

    def test_rotates_x_toward_minus_y(self):
        # This convention takes ECI -> ECEF: a point fixed in ECI appears
        # to move westward (toward -y) as the Earth rotates eastward.
        rot = rotation_about_z(math.pi / 2)
        rotated = rot @ np.array([1.0, 0.0, 0.0])
        np.testing.assert_allclose(rotated, [0.0, -1.0, 0.0], atol=1e-12)

    def test_orthonormal(self):
        rot = rotation_about_z(0.7)
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)


class TestEciEcefRoundTrip:
    def test_round_trip(self):
        position = np.array([7_000_000.0, 1_000_000.0, 2_000_000.0])
        t = 1234.5
        back = ecef_to_eci(eci_to_ecef(position, t), t)
        np.testing.assert_allclose(back, position, rtol=1e-12)

    def test_no_rotation_at_epoch(self):
        position = np.array([7e6, 0.0, 0.0])
        np.testing.assert_allclose(eci_to_ecef(position, 0.0), position)

    def test_z_component_unchanged(self):
        position = np.array([1e6, 2e6, 3e6])
        converted = eci_to_ecef(position, 999.0)
        assert converted[2] == pytest.approx(3e6)

    def test_norm_preserved(self):
        position = np.array([5e6, -3e6, 4e6])
        converted = eci_to_ecef(position, 777.0)
        assert np.linalg.norm(converted) == pytest.approx(
            np.linalg.norm(position))

    def test_batch_conversion(self):
        positions = np.array([[7e6, 0.0, 0.0], [0.0, 7e6, 0.0]])
        converted = eci_to_ecef(positions, 100.0)
        assert converted.shape == (2, 3)


class TestGeodeticEcef:
    def test_equator_prime_meridian(self):
        ecef = geodetic_to_ecef(GeodeticPosition(0.0, 0.0, 0.0), WGS84)
        np.testing.assert_allclose(
            ecef, [WGS84.semi_major_axis_m, 0.0, 0.0], atol=1e-6)

    def test_north_pole(self):
        ecef = geodetic_to_ecef(GeodeticPosition(90.0, 0.0, 0.0), WGS84)
        assert ecef[2] == pytest.approx(WGS84.semi_minor_axis_m, rel=1e-9)
        assert abs(ecef[0]) < 1e-6

    def test_altitude_adds_radially_at_equator(self):
        ecef = geodetic_to_ecef(GeodeticPosition(0.0, 0.0, 1000.0), WGS84)
        assert ecef[0] == pytest.approx(
            WGS84.semi_major_axis_m + 1000.0, rel=1e-12)

    def test_round_trip_various_points(self):
        for lat, lon, alt in [(45.0, 45.0, 0.0), (-33.9, 151.2, 100.0),
                              (59.93, 30.34, 550_000.0), (-80.0, -170.0, 5.0),
                              (0.001, 179.99, 1.0)]:
            original = GeodeticPosition(lat, lon, alt)
            back = ecef_to_geodetic(geodetic_to_ecef(original))
            assert back.latitude_deg == pytest.approx(lat, abs=1e-9)
            assert back.longitude_deg == pytest.approx(lon, abs=1e-9)
            assert back.altitude_m == pytest.approx(alt, abs=1e-3)

    def test_round_trip_near_pole(self):
        original = GeodeticPosition(89.9999, 12.0, 100.0)
        back = ecef_to_geodetic(geodetic_to_ecef(original))
        assert back.latitude_deg == pytest.approx(89.9999, abs=1e-6)

    def test_wgs72_differs_slightly_from_wgs84(self):
        pos = GeodeticPosition(30.0, 60.0, 0.0)
        a = geodetic_to_ecef(pos, WGS72)
        b = geodetic_to_ecef(pos, WGS84)
        # The datums differ by a couple of meters at most.
        assert 0.1 < np.linalg.norm(a - b) < 10.0


class TestTopocentricEnu:
    def test_overhead_target_is_pure_up(self):
        observer = GeodeticPosition(0.0, 0.0, 0.0)
        observer_ecef = geodetic_to_ecef(observer)
        target = geodetic_to_ecef(GeodeticPosition(0.0, 0.0, 500_000.0))
        east, north, up = topocentric_enu(observer_ecef, observer, target)
        assert up == pytest.approx(500_000.0, rel=1e-9)
        assert abs(east) < 1e-6
        assert abs(north) < 1e-6

    def test_northern_target_has_positive_north(self):
        observer = GeodeticPosition(0.0, 0.0, 0.0)
        observer_ecef = geodetic_to_ecef(observer)
        target = geodetic_to_ecef(GeodeticPosition(1.0, 0.0, 0.0))
        _, north, _ = topocentric_enu(observer_ecef, observer, target)
        assert north > 0.0

    def test_eastern_target_has_positive_east(self):
        observer = GeodeticPosition(0.0, 0.0, 0.0)
        observer_ecef = geodetic_to_ecef(observer)
        target = geodetic_to_ecef(GeodeticPosition(0.0, 1.0, 0.0))
        east, _, _ = topocentric_enu(observer_ecef, observer, target)
        assert east > 0.0


class TestEllipsoid:
    def test_wgs84_flattening(self):
        assert WGS84.flattening == pytest.approx(1 / 298.257223563)

    def test_semi_minor_axis(self):
        assert WGS84.semi_minor_axis_m == pytest.approx(6_356_752.3142,
                                                        abs=0.01)

    def test_eccentricity_squared(self):
        assert WGS84.eccentricity_squared == pytest.approx(0.00669438,
                                                           rel=1e-5)

    def test_earth_rotation_rate(self):
        # One revolution per sidereal day, ~7.292e-5 rad/s.
        assert EARTH_ROTATION_RATE_RAD_PER_S == pytest.approx(7.2921e-5,
                                                              rel=1e-4)
