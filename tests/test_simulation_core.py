"""Tests for the discrete-event core: scheduler, packets, devices,
positions."""

import math

import numpy as np
import pytest

from repro.simulation.devices import DeviceStats, LinkDevice
from repro.simulation.events import EventScheduler
from repro.simulation.packet import DEFAULT_HEADER_BYTES, Packet
from repro.simulation.positions import PositionService


class TestEventScheduler:
    def test_runs_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, lambda: fired.append("b"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(3.0, lambda: fired.append("c"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_for_same_time(self):
        sched = EventScheduler()
        fired = []
        for i in range(5):
            sched.schedule(1.0, lambda i=i: fired.append(i))
        sched.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(1.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [1.5]
        assert sched.now == 1.5

    def test_until_excludes_boundary(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.schedule(2.0, lambda: fired.append(2))
        sched.run(until_s=2.0)
        assert fired == [1]
        assert sched.now == 2.0
        sched.run(until_s=3.0)
        assert fired == [1, 2]

    def test_events_scheduled_during_run(self):
        sched = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            sched.schedule(1.0, lambda: fired.append("second"))

        sched.schedule(1.0, first)
        sched.run()
        assert fired == ["first", "second"]

    def test_event_exactly_at_until_is_deferred(self):
        """An event scheduled exactly at ``until_s`` must not run in that
        window, but the clock still advances to ``until_s``."""
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(sched.now))
        sched.run(until_s=1.0)
        assert fired == []
        assert sched.now == 1.0
        assert sched.events_processed == 0
        # The deferred event runs at its original time in the next window.
        sched.run(until_s=2.0)
        assert fired == [1.0]

    def test_run_until_with_empty_queue_advances_clock(self):
        sched = EventScheduler()
        sched.run(until_s=5.0)
        assert sched.now == 5.0
        assert sched.events_processed == 0

    def test_repeated_windows_partition_time(self):
        sched = EventScheduler()
        fired = []
        for t in (0.5, 1.0, 1.5, 2.0):
            sched.schedule(t, lambda t=t: fired.append(t))
        sched.run(until_s=1.0)
        assert fired == [0.5]
        sched.run(until_s=2.0)
        assert fired == [0.5, 1.0, 1.5]
        sched.run()
        assert fired == [0.5, 1.0, 1.5, 2.0]

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.schedule_at(0.5, lambda: None)

    def test_event_count(self):
        sched = EventScheduler()
        for _ in range(7):
            sched.schedule(1.0, lambda: None)
        sched.run()
        assert sched.events_processed == 7

    def test_clear(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        sched.clear()
        sched.run()
        assert fired == []


class TestPacket:
    def test_payload_defaults_to_size_minus_headers(self):
        packet = Packet(1, 0, 1, size_bytes=1500)
        assert packet.payload_bytes == 1500 - DEFAULT_HEADER_BYTES

    def test_explicit_payload(self):
        packet = Packet(1, 0, 1, size_bytes=64, payload_bytes=0)
        assert packet.payload_bytes == 0

    def test_unique_ids(self):
        a = Packet(1, 0, 1, size_bytes=100)
        b = Packet(1, 0, 1, size_bytes=100)
        assert a.packet_id != b.packet_id

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(1, 0, 1, size_bytes=0)

    def test_repr_contains_kind(self):
        packet = Packet(1, 0, 1, size_bytes=100, kind="ack")
        assert "ack" in repr(packet)

    def test_sack_default_empty(self):
        packet = Packet(1, 0, 1, size_bytes=40, kind="ack")
        assert packet.sack == ()


class TestPositionService:
    def test_ground_station_static(self, small_network):
        service = PositionService(small_network)
        gs_node = small_network.gs_node_id(0)
        p0 = service.position_m(gs_node, 0.0)
        p1 = service.position_m(gs_node, 100.0)
        assert p0 == p1

    def test_satellite_matches_constellation(self, small_network):
        service = PositionService(small_network, quantum_s=0.0)
        batch = small_network.constellation.positions_ecef_m(50.0)
        for sat in [0, 31, 99]:
            np.testing.assert_allclose(
                service.position_m(sat, 50.0), batch[sat], atol=1e-6)

    def test_quantization_error_bounded(self, small_network):
        coarse = PositionService(small_network, quantum_s=0.01)
        exact = PositionService(small_network, quantum_s=0.0)
        # Within one quantum, position differs by at most v * quantum.
        p_coarse = np.array(coarse.position_m(5, 0.0099))
        p_exact = np.array(exact.position_m(5, 0.0099))
        assert np.linalg.norm(p_coarse - p_exact) < 80.0  # < 7.6km/s * 10ms

    def test_distance_symmetric(self, small_network):
        service = PositionService(small_network)
        d_ab = service.distance_m(0, 5, 10.0)
        d_ba = service.distance_m(5, 0, 10.0)
        assert d_ab == d_ba

    def test_delay_is_distance_over_c(self, small_network):
        service = PositionService(small_network)
        d = service.distance_m(0, 1, 0.0)
        assert service.delay_s(0, 1, 0.0) == pytest.approx(d / 299_792_458.0)

    def test_cache_keeps_hot_bucket_across_evictions(self, small_network):
        """Regression: the memo used to be cleared wholesale at its size
        limit, evicting the *current* time bucket mid-transmission-burst.
        The two-generation cache promotes hot entries, so an actively
        queried bucket is never recomputed no matter how long the run."""
        service = PositionService(small_network, quantum_s=0.001,
                                  cache_entries=16)
        hot_time = 0.0005  # bucket 0 of satellite 0
        service.position_m(0, hot_time)
        unique_keys = 1
        for round_index in range(50):
            # Flood with fresh buckets to force many generation rotations,
            # touching the hot entry between floods (as a transmission
            # burst would).
            for step in range(10):
                service.position_m(1, (round_index * 10 + step) * 0.001)
                unique_keys += 1
            service.position_m(0, hot_time)
        # Every unique (node, bucket) was propagated exactly once: the hot
        # entry survived all rotations via promotion.
        assert service.position_computes == unique_keys

    def test_old_generation_hit_promoted_not_recomputed(self, small_network):
        service = PositionService(small_network, quantum_s=0.001,
                                  cache_entries=4)
        service.position_m(0, 0.0)
        computes = service.position_computes
        # Overflow the young generation so (0, 0) rotates into the old one.
        for step in range(1, 6):
            service.position_m(1, step * 0.001)
        assert service.position_m(0, 0.0) == service.position_m(0, 0.0)
        assert service.position_computes == computes + 5

    def test_cache_entries_validation(self, small_network):
        with pytest.raises(ValueError):
            PositionService(small_network, cache_entries=0)

    def test_negative_quantum_rejected(self, small_network):
        with pytest.raises(ValueError):
            PositionService(small_network, quantum_s=-1.0)


class TestLinkDevice:
    def _make(self, rate_bps=8000.0, queue=2, delay_s=0.01):
        sched = EventScheduler()
        delivered = []

        class FakePositions:
            def delay_s(self, a, b, t):
                return delay_s

        device = LinkDevice(sched, FakePositions(), node_id=0,
                            rate_bps=rate_bps, queue_packets=queue,
                            deliver=lambda pkt, node: delivered.append(
                                (sched.now, pkt, node)))
        return sched, device, delivered

    def test_serialization_plus_propagation(self):
        sched, device, delivered = self._make(rate_bps=8000.0, delay_s=0.5)
        # 100 bytes at 8000 bps = 0.1 s serialization.
        device.enqueue(Packet(1, 0, 1, size_bytes=100), to_node=1)
        sched.run()
        assert len(delivered) == 1
        assert delivered[0][0] == pytest.approx(0.6)

    def test_fifo_ordering(self):
        sched, device, delivered = self._make()
        packets = [Packet(1, 0, 1, size_bytes=100, seq=i) for i in range(3)]
        for packet in packets:
            assert device.enqueue(packet, to_node=1)
        sched.run()
        assert [p.seq for _, p, _ in delivered] == [0, 1, 2]

    def test_drop_tail_when_full(self):
        sched, device, delivered = self._make(queue=2)
        results = [device.enqueue(Packet(1, 0, 1, size_bytes=100), 1)
                   for _ in range(5)]
        # 1 in service + 2 queued accepted; 2 dropped.
        assert results == [True, True, True, False, False]
        assert device.stats.packets_dropped == 2
        sched.run()
        assert len(delivered) == 3

    def test_zero_queue_still_transmits_one(self):
        sched, device, delivered = self._make(queue=0)
        assert device.enqueue(Packet(1, 0, 1, size_bytes=100), 1)
        assert not device.enqueue(Packet(1, 0, 1, size_bytes=100), 1)
        sched.run()
        assert len(delivered) == 1

    def test_stats_counters(self):
        sched, device, _ = self._make()
        device.enqueue(Packet(1, 0, 1, size_bytes=100), 1)
        sched.run()
        assert device.stats.packets_sent == 1
        assert device.stats.bytes_sent == 100
        assert device.stats.busy_time_s == pytest.approx(0.1)

    def test_utilization(self):
        sched, device, _ = self._make()
        device.enqueue(Packet(1, 0, 1, size_bytes=100), 1)
        sched.run()
        assert device.stats.utilization(8000.0, 1.0) == pytest.approx(0.1)

    def test_invalid_construction(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            LinkDevice(sched, None, 0, rate_bps=0.0, queue_packets=1,
                       deliver=lambda p, n: None)
        with pytest.raises(ValueError):
            LinkDevice(sched, None, 0, rate_bps=1.0, queue_packets=-1,
                       deliver=lambda p, n: None)


class TestBusyTimeAccounting:
    """Regression: busy time is credited at transmit *finish* and
    pro-rated at measurement boundaries, not credited in full at start
    (which let a window ending mid-serialization report utilization > 1
    and spuriously emit the ``utilization_above_1`` warning)."""

    def _make(self, rate_bps=8000.0):
        sched = EventScheduler()

        class FakePositions:
            def delay_s(self, a, b, t):
                return 0.01

        device = LinkDevice(sched, FakePositions(), node_id=0,
                            rate_bps=rate_bps, queue_packets=4,
                            deliver=lambda pkt, node: None)
        return sched, device

    def test_window_ending_mid_serialization(self):
        from repro.obs.trace import WARNING, RingBufferTracer
        sched, device = self._make(rate_bps=8000.0)
        # 1000 bytes at 8000 bps = 1.0 s serialization; stop at 0.5 s.
        device.enqueue(Packet(1, 0, 1, size_bytes=1000), 1)
        sched.run(until_s=0.5)
        tracer = RingBufferTracer()
        ratio = device.utilization(0.5, tracer=tracer)
        assert ratio <= 1.0
        assert ratio == pytest.approx(1.0)  # busy for the whole window
        assert tracer.events_of(WARNING) == []

    def test_partial_window_pro_rated(self):
        sched, device = self._make(rate_bps=8000.0)
        device.enqueue(Packet(1, 0, 1, size_bytes=1000), 1)  # 1.0 s tx
        sched.run(until_s=0.25)
        # Counter untouched until finish; the accessor pro-rates.
        assert device.stats.busy_time_s == 0.0
        assert device.busy_time_s() == pytest.approx(0.25)
        assert device.utilization(2.0) == pytest.approx(0.125)

    def test_full_credit_at_finish(self):
        sched, device = self._make(rate_bps=8000.0)
        device.enqueue(Packet(1, 0, 1, size_bytes=1000), 1)
        sched.run(until_s=0.5)
        sched.run()
        assert device.stats.busy_time_s == pytest.approx(1.0)
        assert device.busy_time_s() == pytest.approx(1.0)
        assert not device.is_busy

    def test_true_oversubscription_still_warns(self):
        from repro.obs.trace import WARNING, RingBufferTracer
        sched, device = self._make(rate_bps=8000.0)
        for _ in range(3):
            device.enqueue(Packet(1, 0, 1, size_bytes=1000), 1)
        sched.run()  # 3.0 s of busy time
        tracer = RingBufferTracer()
        ratio = device.utilization(1.0, tracer=tracer)
        assert ratio == pytest.approx(3.0)
        warnings = tracer.events_of(WARNING)
        assert len(warnings) == 1
        assert warnings[0].reason == "utilization_above_1"

    def test_oversubscription_warning_carries_link_and_ratio(self):
        from repro.obs.trace import WARNING, RingBufferTracer
        stats = DeviceStats()
        stats.busy_time_s = 3.0
        # Without a tracer the raw ratio comes back unclamped, silently.
        assert stats.utilization(8000.0, 2.0) == pytest.approx(1.5)
        tracer = RingBufferTracer()
        ratio = stats.utilization(8000.0, 2.0, tracer=tracer,
                                  link_name="isl-0-1")
        assert ratio == pytest.approx(1.5)
        (warning,) = tracer.events_of(WARNING)
        assert warning.reason == "utilization_above_1"
        assert warning.link == "isl-0-1"
        assert warning.value == pytest.approx(1.5)
        # At or below 1.0 the warning path stays quiet.
        tracer2 = RingBufferTracer()
        stats.utilization(8000.0, 3.0, tracer=tracer2, link_name="isl-0-1")
        assert tracer2.events_of(WARNING) == []

    def test_window_starting_and_ending_mid_packet(self):
        sched, device = self._make(rate_bps=8000.0)
        device.enqueue(Packet(1, 0, 1, size_bytes=1000), 1)  # 1.0 s tx
        sched.run(until_s=0.8)
        # Nothing credited to the counter yet: the packet is in flight.
        assert device.stats.busy_time_s == 0.0
        # A window fully inside the serialization pro-rates both edges.
        window = device.busy_time_s(0.75) - device.busy_time_s(0.25)
        assert window == pytest.approx(0.5)
        # Clock-default accessor agrees with the explicit ``now``.
        assert device.busy_time_s() == pytest.approx(
            device.busy_time_s(sched.now))
