"""Tests for the fluid engines: max-min allocation, AIMD dynamics."""

import numpy as np
import pytest

from repro.fluid.aimd import AimdFluidSimulation
from repro.fluid.engine import FluidFlow, FluidSimulation, path_devices
from repro.fluid.maxmin import max_min_fair_allocation
from repro.fluid.vectorized import (FlowLinkMatrix,
                                    max_min_fair_allocation_vectorized,
                                    waterfill)

BOTH_KERNELS = [max_min_fair_allocation, max_min_fair_allocation_vectorized]


class TestMaxMin:
    def test_single_flow_takes_link(self):
        rates = max_min_fair_allocation({"l": 10.0}, [["l"]])
        np.testing.assert_allclose(rates, [10.0])

    def test_equal_split(self):
        rates = max_min_fair_allocation({"l": 9.0}, [["l"], ["l"], ["l"]])
        np.testing.assert_allclose(rates, [3.0, 3.0, 3.0])

    def test_classic_three_link_example(self):
        # Flow A uses l1+l2, flow B uses l1, flow C uses l2.
        # l1 = 10, l2 = 4: A and C split l2 at 2 each; B then gets 8.
        capacity = {"l1": 10.0, "l2": 4.0}
        flows = [["l1", "l2"], ["l1"], ["l2"]]
        rates = max_min_fair_allocation(capacity, flows)
        np.testing.assert_allclose(rates, [2.0, 8.0, 2.0])

    def test_demand_cap(self):
        rates = max_min_fair_allocation({"l": 10.0}, [["l"], ["l"]],
                                        demands=[1.0, 100.0])
        np.testing.assert_allclose(rates, [1.0, 9.0])

    def test_no_link_flow_needs_finite_demand(self):
        with pytest.raises(ValueError):
            max_min_fair_allocation({}, [[]])
        rates = max_min_fair_allocation({}, [[]], demands=[5.0])
        np.testing.assert_allclose(rates, [5.0])

    def test_no_capacity_exceeded(self):
        rng = np.random.default_rng(0)
        links = {f"l{i}": float(rng.uniform(1, 10)) for i in range(8)}
        flows = []
        link_names = list(links)
        for _ in range(20):
            k = rng.integers(1, 4)
            flows.append(list(rng.choice(link_names, size=k, replace=False)))
        rates = max_min_fair_allocation(links, flows)
        loads = {name: 0.0 for name in links}
        for flow, rate in zip(flows, rates):
            for link in flow:
                loads[link] += rate
        for name in links:
            assert loads[name] <= links[name] * (1 + 1e-9)

    def test_max_min_property(self):
        """No flow can be raised without lowering a flow with an equal or
        smaller rate: every flow has a saturated link where it has the
        maximal rate."""
        capacity = {"a": 6.0, "b": 9.0, "c": 4.0}
        flows = [["a", "b"], ["b"], ["a", "c"], ["c"], ["b", "c"]]
        rates = max_min_fair_allocation(capacity, flows)
        loads = {name: 0.0 for name in capacity}
        for flow, rate in zip(flows, rates):
            for link in flow:
                loads[link] += rate
        for i, flow in enumerate(flows):
            bottlenecks = [link for link in flow
                           if loads[link] >= capacity[link] - 1e-9]
            assert bottlenecks, f"flow {i} has no saturated link"
            assert any(
                rates[i] >= max(rates[j] for j in range(len(flows))
                                if link in flows[j]) - 1e-9
                for link in bottlenecks)

    def test_unknown_link_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair_allocation({"l": 1.0}, [["x"]])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair_allocation({"l": -1.0}, [["l"]])

    def test_empty_flows(self):
        assert len(max_min_fair_allocation({"l": 1.0}, [])) == 0

    def test_zero_capacity_link(self):
        rates = max_min_fair_allocation({"l": 0.0}, [["l"]])
        np.testing.assert_allclose(rates, [0.0])

    def test_zero_capacity_link_does_not_starve_others(self):
        """Flows crossing a dead link get 0; disjoint flows are unaffected."""
        capacity = {"dead": 0.0, "live": 10.0}
        flows = [["dead"], ["dead", "live"], ["live"]]
        rates = max_min_fair_allocation(capacity, flows)
        np.testing.assert_allclose(rates, [0.0, 0.0, 10.0])

    def test_demand_exactly_at_fair_share(self):
        """A demand equal to the link's equal split freezes at that rate
        and leaves nothing stranded: the other flow takes the rest."""
        rates = max_min_fair_allocation({"l": 10.0}, [["l"], ["l"]],
                                        demands=[5.0, np.inf])
        np.testing.assert_allclose(rates, [5.0, 5.0])

    def test_all_flows_demand_capped(self):
        """When every demand is below any link share, rates == demands and
        capacity goes unused."""
        rates = max_min_fair_allocation({"l": 100.0},
                                        [["l"], ["l"], ["l"]],
                                        demands=[1.0, 2.0, 3.0])
        np.testing.assert_allclose(rates, [1.0, 2.0, 3.0])


class TestPathDevices:
    def test_isl_and_gsl_hops(self):
        # src GS (100) -> sat 5 -> sat 6 -> dst GS (101), 100 satellites.
        devices = path_devices([100, 5, 6, 101], num_satellites=100)
        assert devices == [("gsl", 100), (5, 6), ("gsl", 6)]

    def test_bent_pipe_path(self):
        devices = path_devices([100, 5, 102, 7, 101], num_satellites=100)
        assert devices == [("gsl", 100), ("gsl", 5), ("gsl", 102),
                           ("gsl", 7)]


class TestFluidSimulation:
    def test_rates_respect_capacity(self, small_network):
        flows = [FluidFlow(0, 3), FluidFlow(1, 4), FluidFlow(2, 5)]
        sim = FluidSimulation(small_network, flows,
                              link_capacity_bps=10e6)
        result = sim.run(duration_s=4.0, step_s=2.0)
        assert result.flow_rates_bps.shape == (2, 3)
        assert (result.flow_rates_bps <= 10e6 + 1e-6).all()
        for loads in result.device_load_bps:
            for load in loads.values():
                assert load <= 10e6 * (1 + 1e-9)

    def test_elastic_flow_bottlenecked_somewhere(self, small_network):
        flows = [FluidFlow(0, 3)]
        sim = FluidSimulation(small_network, flows, link_capacity_bps=10e6)
        result = sim.run(duration_s=2.0, step_s=1.0)
        # A single elastic flow gets the full device capacity.
        np.testing.assert_allclose(result.flow_rates_bps, 10e6, rtol=1e-6)
        unused = result.unused_bandwidth_bps(0)
        np.testing.assert_allclose(unused, 0.0, atol=1.0)

    def test_frozen_topology_constant_paths(self, small_network):
        flows = [FluidFlow(0, 3)]
        sim = FluidSimulation(small_network, flows,
                              freeze_topology_at_s=0.0)
        result = sim.run(duration_s=3.0, step_s=1.0)
        assert result.flow_paths[0][0] == result.flow_paths[2][0]

    def test_isl_utilization_excludes_gsl(self, small_network):
        flows = [FluidFlow(0, 3), FluidFlow(4, 1)]
        result = FluidSimulation(small_network, flows).run(2.0, 1.0)
        for key in result.isl_utilization(0):
            assert key[0] != "gsl"

    def test_validation(self, small_network):
        with pytest.raises(ValueError):
            FluidSimulation(small_network, [])
        with pytest.raises(ValueError):
            FluidSimulation(small_network, [FluidFlow(0, 1)],
                            link_capacity_bps=0.0)
        with pytest.raises(ValueError):
            FluidFlow(2, 2)
        with pytest.raises(ValueError):
            FluidFlow(0, 1, demand_bps=0.0)


class TestAimdFluid:
    def test_rates_stay_positive_and_bounded(self, small_network):
        flows = [FluidFlow(0, 3), FluidFlow(1, 4), FluidFlow(5, 2)]
        sim = AimdFluidSimulation(small_network, flows,
                                  link_capacity_bps=10e6)
        result = sim.run(duration_s=20.0, step_s=1.0)
        rates = result.flow_rates_bps
        connected = rates > 0
        assert (rates[connected] <= 10e6 + 1e-6).all()

    def test_single_flow_converges_to_capacity(self, small_network):
        sim = AimdFluidSimulation(small_network, [FluidFlow(0, 3)],
                                  link_capacity_bps=10e6)
        result = sim.run(duration_s=40.0, step_s=1.0)
        # Alone on its path, AIMD should reach (and ride at) capacity.
        assert result.flow_rates_bps[-5:, 0].max() > 0.9 * 10e6

    def test_two_flows_share_roughly_fairly(self, small_network):
        """Two flows with the same bottleneck converge to similar average
        rates."""
        flows = [FluidFlow(0, 3), FluidFlow(0, 3)]
        sim = AimdFluidSimulation(small_network, flows,
                                  link_capacity_bps=10e6)
        result = sim.run(duration_s=60.0, step_s=1.0)
        late = result.flow_rates_bps[30:]
        means = late.mean(axis=0)
        assert means.min() > 0.25 * means.max()

    def test_demand_cap_respected(self, small_network):
        sim = AimdFluidSimulation(
            small_network, [FluidFlow(0, 3, demand_bps=1e6)],
            link_capacity_bps=10e6)
        result = sim.run(duration_s=20.0, step_s=1.0)
        assert result.flow_rates_bps.max() <= 1e6 + 1e-6

    def test_utilization_capped_at_capacity(self, small_network):
        flows = [FluidFlow(0, 3), FluidFlow(1, 4)]
        sim = AimdFluidSimulation(small_network, flows,
                                  link_capacity_bps=10e6)
        result = sim.run(duration_s=10.0, step_s=1.0)
        for loads in result.device_load_bps:
            for load in loads.values():
                assert load <= 10e6 * (1 + 1e-9)

    def test_validation(self, small_network):
        with pytest.raises(ValueError):
            AimdFluidSimulation(small_network, [])
        with pytest.raises(ValueError):
            AimdFluidSimulation(small_network, [FluidFlow(0, 1)],
                                rtt_estimate_s=0.0)
        with pytest.raises(ValueError):
            AimdFluidSimulation(small_network, [FluidFlow(0, 1)],
                                queue_packets=-1)


class TestFluidFlowValidation:
    """Regression: NaN demand must be rejected, not silently accepted."""

    def test_nan_demand_rejected(self):
        with pytest.raises(ValueError, match="demand"):
            FluidFlow(0, 1, demand_bps=float("nan"))

    def test_negative_and_zero_demand_rejected(self):
        for demand in (0.0, -5.0, float("-inf")):
            with pytest.raises(ValueError):
                FluidFlow(0, 1, demand_bps=demand)

    def test_size_and_start_validated(self):
        for size in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                FluidFlow(0, 1, size_bytes=size)
        for start in (-1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                FluidFlow(0, 1, start_s=start)
        flow = FluidFlow(0, 1, size_bytes=100.0, start_s=2.0)
        assert flow.is_finite
        assert not FluidFlow(0, 1).is_finite


class TestPerfSummaryEdgeCases:
    """FluidResult.perf_summary on degenerate results."""

    @staticmethod
    def _result(**overrides):
        from repro.fluid.engine import FluidResult
        defaults = dict(
            times_s=np.array([0.0, 1.0]),
            flow_rates_bps=np.zeros((2, 0)),
            flow_paths=[[], []],
            device_load_bps=[{}, {}],
            num_satellites=100,
            link_capacity_bps=10e6,
        )
        defaults.update(overrides)
        return FluidResult(**defaults)

    def test_zero_flows(self):
        summary = self._result().perf_summary()
        assert summary["flows"] == 0.0
        assert summary["flows_ever_connected"] == 0.0
        assert summary["mean_rate_bps"] == 0.0
        assert "fct_mean_s" not in summary

    def test_all_disconnected_flows(self):
        result = self._result(
            flow_rates_bps=np.zeros((2, 3)),
            flow_paths=[[None] * 3, [None] * 3])
        summary = result.perf_summary()
        assert summary["flows"] == 3.0
        assert summary["flows_ever_connected"] == 0.0
        assert summary["peak_utilization"] == 0.0

    def test_empty_device_load(self):
        summary = self._result(device_load_bps=[]).perf_summary()
        assert "peak_utilization" not in summary

    def test_no_completions_reports_zero_fct(self):
        result = self._result(
            flow_rates_bps=np.zeros((2, 1)),
            flow_paths=[[None], [None]],
            duration_s=2.0,
            flow_offered_bits=np.array([8000.0]),
            flow_delivered_bits=np.array([0.0]),
            flow_fct_s=np.array([np.nan]))
        summary = result.perf_summary()
        assert summary["flows_completed"] == 0.0
        assert "fct_mean_s" not in summary
        assert summary["flows_finite"] == 1.0
        assert summary["offered_load_bps"] == pytest.approx(4000.0)
        assert summary["delivered_load_bps"] == 0.0
        assert result.fct_values().size == 0


class TestRepeatedLinkRegression:
    """ISSUE 6 regression: loop paths must be weighted by traversal
    multiplicity.

    The old set-based allocator deduped a flow's repeated link
    traversals, so ``{'a': 10.0}`` with paths ``[['a', 'a'], ['a']]``
    returned ``[5., 5.]`` — 5*2 + 5 = 15 bps consumed on a 10 bps link.
    The fair answer weights the loop flow twice: both flows freeze at
    10/3, and 2*(10/3) + 10/3 = 10 exactly saturates the link.
    """

    @pytest.mark.parametrize("allocate", BOTH_KERNELS)
    def test_issue_example(self, allocate):
        rates = allocate({"a": 10.0}, [["a", "a"], ["a"]])
        np.testing.assert_allclose(rates, [10.0 / 3.0, 10.0 / 3.0])
        consumed = 2.0 * rates[0] + rates[1]
        assert consumed <= 10.0 * (1 + 1e-9)

    @pytest.mark.parametrize("allocate", BOTH_KERNELS)
    def test_triple_traversal(self, allocate):
        rates = allocate({"a": 12.0}, [["a", "a", "a"], ["a"]])
        np.testing.assert_allclose(rates, [3.0, 3.0])
        assert 3.0 * rates[0] + rates[1] <= 12.0 * (1 + 1e-9)

    @pytest.mark.parametrize("allocate", BOTH_KERNELS)
    def test_loop_flow_with_demand_cap(self, allocate):
        # The loop flow caps at its demand; the freed weight goes to the
        # single-traversal flow (2*1 + 8 = 10).
        rates = allocate({"a": 10.0}, [["a", "a"], ["a"]],
                         demands=[1.0, np.inf])
        np.testing.assert_allclose(rates, [1.0, 8.0])

    @pytest.mark.parametrize("allocate", BOTH_KERNELS)
    def test_loop_through_two_links(self, allocate):
        # Flow 0 crosses l1 twice and l2 once; flow 1 crosses l2 only.
        # l1 saturates first at share 5/2; l2 then leaves 10 - 2.5 for
        # flow 1.
        rates = allocate({"l1": 5.0, "l2": 10.0},
                         [["l1", "l2", "l1"], ["l2"]])
        np.testing.assert_allclose(rates, [2.5, 7.5])


class TestVectorizedKernel:
    """The array waterfilling kernel against the pure-Python oracle."""

    def _random_scenario(self, rng):
        num_links = rng.integers(1, 7)
        links = [f"l{j}" for j in range(num_links)]
        capacity = {link: float(rng.uniform(0.5, 20.0)) for link in links}
        num_flows = rng.integers(1, 11)
        flow_links = []
        for _ in range(num_flows):
            hops = rng.integers(0, 5)
            # Sampling with replacement makes repeated traversals common.
            flow_links.append(list(rng.choice(links, size=hops)))
        if rng.random() < 0.5:
            demands = rng.uniform(0.1, 15.0, size=num_flows)
        else:
            demands = None
            for flow in flow_links:
                if not flow:
                    flow.append(links[0])
        return capacity, flow_links, demands

    def test_bit_identical_to_oracle_on_random_scenarios(self):
        rng = np.random.default_rng(1234)
        for _ in range(300):
            capacity, flow_links, demands = self._random_scenario(rng)
            expected = max_min_fair_allocation(capacity, flow_links,
                                               demands)
            got = max_min_fair_allocation_vectorized(capacity, flow_links,
                                                     demands)
            assert np.array_equal(expected, got), (capacity, flow_links,
                                                   demands)

    def test_waterfill_subset_activation_matches_subset_solve(self):
        rng = np.random.default_rng(99)
        capacity = {f"l{j}": float(rng.uniform(1.0, 10.0))
                    for j in range(5)}
        flow_links = [list(rng.choice(list(capacity), size=3))
                      for _ in range(12)]
        demands = rng.uniform(0.5, 8.0, size=12)
        matrix = FlowLinkMatrix.from_paths(capacity, flow_links)
        active = np.array([0, 3, 4, 7, 11])
        rates = waterfill(matrix, demands=demands, active=active)
        expected = max_min_fair_allocation(
            capacity, [flow_links[i] for i in active], demands[active])
        assert np.array_equal(rates, expected)

    def test_from_paths_rejects_unknown_link(self):
        with pytest.raises(ValueError):
            FlowLinkMatrix.from_paths({"l": 1.0}, [["l", "x"]])

    def test_error_parity_with_oracle(self):
        # Infinite-demand flow with no links: both kernels refuse.
        with pytest.raises(ValueError):
            max_min_fair_allocation({}, [[]])
        with pytest.raises(ValueError):
            max_min_fair_allocation_vectorized({}, [[]])

    def test_link_loads_count_multiplicity(self):
        matrix = FlowLinkMatrix.from_paths({"a": 10.0},
                                           [["a", "a"], ["a"]])
        loads = matrix.link_loads(np.array([2.0, 3.0]))
        np.testing.assert_allclose(loads, [7.0])


class TestEngineKernelParity:
    """FluidSimulation's two kernels must agree bit-for-bit."""

    def _run_both(self, network, flows, **kwargs):
        results = []
        for kernel in ("reference", "vectorized"):
            sim = FluidSimulation(network, flows, kernel=kernel, **kwargs)
            results.append(sim.run(duration_s=4.0, step_s=2.0))
        return results

    def test_static_scenario(self, small_network):
        flows = [FluidFlow(0, 3), FluidFlow(1, 4), FluidFlow(2, 5),
                 FluidFlow(3, 0, demand_bps=2e6)]
        ref, vec = self._run_both(small_network, flows,
                                  link_capacity_bps=10e6)
        assert np.array_equal(ref.flow_rates_bps, vec.flow_rates_bps)
        assert ref.device_load_bps == vec.device_load_bps
        assert ref.flow_paths == vec.flow_paths

    def test_dynamic_workload(self, small_network):
        flows = [FluidFlow(0, 3), FluidFlow(1, 4, start_s=1.0,
                                            size_bytes=500_000),
                 FluidFlow(2, 5, size_bytes=2_000_000),
                 FluidFlow(4, 1, start_s=3.0, size_bytes=100_000)]
        ref, vec = self._run_both(small_network, flows,
                                  link_capacity_bps=10e6)
        assert np.array_equal(ref.flow_rates_bps, vec.flow_rates_bps)
        assert np.array_equal(ref.flow_delivered_bits,
                              vec.flow_delivered_bits)
        fct_ref, fct_vec = ref.flow_fct_s, vec.flow_fct_s
        assert ((fct_ref == fct_vec) | (np.isnan(fct_ref)
                                        & np.isnan(fct_vec))).all()
        assert ref.device_load_bps == vec.device_load_bps
        assert ref.perf["allocations_solved"] == \
            vec.perf["allocations_solved"]

    def test_capacity_overrides(self, small_network):
        flows = [FluidFlow(0, 3), FluidFlow(1, 4)]
        paths = FluidSimulation(small_network, flows)._paths_at(
            small_network.snapshot(0.0))
        device = path_devices(paths[0], small_network.num_satellites)[0]
        ref, vec = self._run_both(small_network, flows,
                                  link_capacity_bps=10e6,
                                  capacity_overrides={device: 1e6})
        assert np.array_equal(ref.flow_rates_bps, vec.flow_rates_bps)
        assert ref.device_load_bps == vec.device_load_bps

    def test_unknown_kernel_rejected(self, small_network):
        with pytest.raises(ValueError):
            FluidSimulation(small_network, [FluidFlow(0, 1)],
                            kernel="gpu")
