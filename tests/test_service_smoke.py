"""End-to-end service smoke: serve, checkpoint over the wire, SIGKILL
the server, resume the checkpoint in a fresh process, and verify the
resumed run's report is bit-identical to an uninterrupted run.

This is the CI "service smoke" job's test: everything goes through the
CLI (`repro serve` / `repro checkpoint` / `repro resume`) in separate
processes, so it also proves checkpoints survive process death — the
whole point of having them.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.report import WALL_CLOCK_KEYS
from repro.service import ServiceClient, read_checkpoint_header

pytestmark = pytest.mark.service

SHELL = "K1"
CITIES = 10
HORIZON_S = 8.0
SERVE_ARGS = ["--cities", str(CITIES), "--horizon", str(HORIZON_S)]


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _repro(*args: str) -> subprocess.CompletedProcess:
    result = subprocess.run([sys.executable, "-m", "repro", *args],
                            env=_env(), capture_output=True, text=True,
                            timeout=300)
    assert result.returncode == 0, \
        f"repro {' '.join(args)} failed:\n{result.stderr}"
    return result


def _deterministic(report_path) -> str:
    """A report JSON file, canonicalized for cross-process comparison."""
    with open(report_path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    summary = payload.get("summary", {})
    for key in WALL_CLOCK_KEYS:
        summary.pop(key, None)
    payload.pop("phases", None)
    return json.dumps(payload, sort_keys=True)


def test_checkpoint_survives_sigkill(tmp_path):
    workload = tmp_path / "workload.json"
    _repro("traffic", "-o", str(workload), "--cities", str(CITIES),
           "--duration", str(HORIZON_S), "--total-mbps", "20",
           "--seed", "3")

    # Uninterrupted baseline: a t=0 checkpoint resumed to the horizon.
    base_ckpt = tmp_path / "base.ckpt"
    base_report = tmp_path / "base.json"
    _repro("checkpoint", SHELL, "--workload", str(workload), *SERVE_ARGS,
           "-o", str(base_ckpt))
    _repro("resume", str(base_ckpt), "-o", str(base_report))

    # Live server: advance mid-run, checkpoint over the wire, SIGKILL.
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", SHELL,
         "--workload", str(workload), *SERVE_ARGS, "--port", "0"],
        env=_env(), stdout=subprocess.PIPE, text=True)
    live_ckpt = tmp_path / "live.ckpt"
    try:
        port = None
        deadline = time.monotonic() + 120.0
        assert server.stdout is not None
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            match = re.search(r"on 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "server never reported its port"
        with ServiceClient("127.0.0.1", port, timeout_s=120.0) as client:
            client.advance(4)
            header = client.checkpoint(str(live_ckpt))
        assert header["time_s"] == 4.0
    finally:
        server.kill()  # SIGKILL: no cleanup, no atexit, no flushing
        server.wait(timeout=30)
    assert server.returncode == -signal.SIGKILL

    # The checkpoint outlives the dead server and resumes elsewhere.
    header = read_checkpoint_header(str(live_ckpt))
    assert header["engine"] == "packet"
    assert header["time_s"] == 4.0
    resumed_report = tmp_path / "resumed.json"
    _repro("resume", str(live_ckpt), "-o", str(resumed_report))

    assert _deterministic(resumed_report) == _deterministic(base_report)
