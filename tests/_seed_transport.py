"""Frozen snapshot of the seed (pre-plug-in) TCP flow classes.

This module is the pre-PR-10 transport layer, captured verbatim before
the congestion-control logic was extracted into ``repro.cc`` plug-ins.
It exists for ONE purpose: the bit-identity regression tests run the
refactored flows side by side with these frozen classes on identical
scenarios and require byte-equal cwnd/RTT traces (ISSUE 10 satellite:
"refactored flows produce bit-identical traces to the seed classes").

Do not modernize or de-duplicate this file; it is a fossil on purpose.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# seed copy of repro/transport/tcp.py
# ----------------------------------------------------------------------



import math
from functools import partial
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.obs.trace import FLOW_CWND, FLOW_RTT
from repro.simulation.packet import DEFAULT_HEADER_BYTES, DEFAULT_MTU_BYTES, Packet
from repro.simulation.simulator import PacketSimulator
from repro.transport.base import Application, TimeSeriesLog


#: Wire size of a pure ACK.
ACK_BYTES = DEFAULT_HEADER_BYTES

#: RFC 6298 parameters.
RTO_MIN_S = 0.2
RTO_MAX_S = 60.0
RTO_INITIAL_S = 1.0

#: FACK/RFC 6675 duplicate threshold.
DUP_THRESHOLD = 3


class SeedTcpNewRenoFlow(Application):
    """A unidirectional TCP flow (sender at src, receiver at dst).

    Args:
        src_gid: Sending ground station.
        dst_gid: Receiving ground station.
        start_s: Connection start time.
        stop_s: The sender stops injecting new data at this time.
        packet_bytes: Wire size of a full data packet (paper: 1500).
        max_packets: Total data packets to send (default: unbounded, a
            "long-running flow").
        initial_cwnd_packets: Initial window (RFC 6928 style, default 10).
        rwnd_packets: Receiver advertised window; caps the usable window.
        delayed_ack_count: ACK every Nth in-order packet (1 disables
            delayed ACKs; 2 is the classic delayed-ACK setting).

    Logs (inspect after :meth:`PacketSimulator.run`):
        * :attr:`cwnd_log` — (time, cwnd in packets) on every change;
        * :attr:`rtt_log` — (time, per-packet RTT) one sample per ACK;
        * :meth:`throughput_series_bps` — receiver goodput per 100 ms bin.
    """

    def __init__(self, src_gid: int, dst_gid: int, start_s: float = 0.0,
                 stop_s: float = math.inf,
                 packet_bytes: int = DEFAULT_MTU_BYTES,
                 max_packets: Optional[int] = None,
                 initial_cwnd_packets: float = 10.0,
                 rwnd_packets: int = 1_000_000,
                 delayed_ack_count: int = 1,
                 throughput_bin_s: float = 0.1) -> None:
        super().__init__()
        if src_gid == dst_gid:
            raise ValueError("source and destination must differ")
        if packet_bytes <= DEFAULT_HEADER_BYTES:
            raise ValueError("packet must be larger than its headers")
        if delayed_ack_count < 1:
            raise ValueError("delayed_ack_count must be >= 1")
        if rwnd_packets < 1:
            raise ValueError("rwnd must be at least one packet")
        self.src_gid = src_gid
        self.dst_gid = dst_gid
        self.start_s = start_s
        self.stop_s = stop_s
        self.packet_bytes = packet_bytes
        self.payload_bytes = packet_bytes - DEFAULT_HEADER_BYTES
        self.max_packets = max_packets if max_packets is not None else 2 ** 62
        self.rwnd_packets = rwnd_packets
        self.delayed_ack_count = delayed_ack_count
        self.throughput_bin_s = throughput_bin_s

        # --- sender state ---
        self.snd_una = 0            # lowest unacknowledged seq
        self.snd_nxt = 0            # next fresh seq
        self.cwnd = float(initial_cwnd_packets)
        self.ssthresh = float(2 ** 30)
        self.dup_acks = 0
        self.in_recovery = False
        self.recover_seq = -1
        self._sacked: Set[int] = set()
        self._lost: Set[int] = set()
        self._retransmitted: Set[int] = set()
        self._highest_sacked = -1
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = RTO_INITIAL_S
        self._timer_epoch = 0
        self._timer_armed = False
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

        # --- receiver state ---
        self.rcv_nxt = 0
        self._out_of_order: Set[int] = set()
        self._pending_ack = 0
        self._delack_epoch = 0
        self._delack_armed = False
        self._reordered_arrivals = 0
        self._bins: List[float] = []

        # --- completion ---
        #: When the last data packet was cumulatively acked (finite
        #: transfers only; None while running or for unbounded flows).
        self.completed_at_s: Optional[float] = None
        #: Optional callback ``on_complete(now_s)`` fired once, when the
        #: transfer completes (workload spawners hook FCT recording here).
        self.on_complete: Optional[Callable[[float], None]] = None

        # --- logs ---
        self.cwnd_log = TimeSeriesLog()
        self.rtt_log = TimeSeriesLog()

        self._src_node = -1
        self._dst_node = -1

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def _install(self, sim: PacketSimulator) -> None:
        self._src_node = sim.gs_node_id(self.src_gid)
        self._dst_node = sim.gs_node_id(self.dst_gid)
        sim.register_handler(self._src_node, self.flow_id, self._on_ack)
        sim.register_handler(self._dst_node, self.flow_id, self._on_data)
        sim.scheduler.schedule_at(self.start_s, self._begin)

    def _begin(self) -> None:
        self._log_cwnd()
        self._try_send()

    # ------------------------------------------------------------------
    # Sender: window accounting
    # ------------------------------------------------------------------

    @property
    def flight_size(self) -> int:
        """Packets outstanding (sent but not cumulatively acked)."""
        return self.snd_nxt - self.snd_una

    @property
    def acked_payload_bytes(self) -> int:
        """Cumulatively acknowledged payload — the goodput numerator of
        the paper's Fig. 2 TCP scalability experiment."""
        return self.snd_una * self.payload_bytes

    def _log_cwnd(self) -> None:
        assert self.sim is not None
        now = self.sim.now
        self.cwnd_log.append(now, self.cwnd)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(now, FLOW_CWND, flow=self.flow_id, value=self.cwnd)

    def _update_loss_marks(self) -> None:
        """FACK-style loss inference from the SACK scoreboard.

        A segment is deemed lost once at least ``DUP_THRESHOLD`` segments
        above it have been SACKed, or (for the head of the window) after
        three duplicate ACKs.
        """
        upper = min(self.snd_nxt, self._highest_sacked - DUP_THRESHOLD + 1)
        for seq in range(self.snd_una, upper):
            if seq not in self._sacked:
                self._lost.add(seq)
        if self.dup_acks >= DUP_THRESHOLD and self.flight_size > 0:
            if self.snd_una not in self._sacked:
                self._lost.add(self.snd_una)

    def _is_lost(self, seq: int) -> bool:
        return seq in self._lost

    def _has_loss(self) -> bool:
        return bool(self._lost)

    def _pipe(self) -> int:
        """RFC 6675 pipe: estimated packets still in the network.

        SACKed packets have arrived; lost packets have left the network
        unless their retransmission is still out.
        """
        pipe = 0
        for seq in range(self.snd_una, self.snd_nxt):
            if seq in self._sacked:
                continue
            if seq in self._lost:
                if seq in self._retransmitted:
                    pipe += 1
                continue
            pipe += 1
        return pipe

    def _usable_window(self) -> int:
        return min(int(self.cwnd), self.rwnd_packets)

    def _try_send(self) -> None:
        """Send retransmissions first, then new data, under pipe < cwnd.

        RFC 6675-style pipe accounting is used at all times: outside loss
        episodes the scoreboard is empty and ``pipe == flight_size``, so
        this reduces to the classic sliding window.  During and after loss
        episodes (including post-RTO slow start) it retransmits
        scoreboard-lost holes before injecting fresh data.
        """
        assert self.sim is not None
        now = self.sim.now
        if now >= self.stop_s:
            return
        window = self._usable_window()
        pipe = self._pipe()
        while pipe < window:
            seq = self._next_retransmission()
            if seq is not None:
                self._transmit(seq, retransmit=True)
                pipe += 1
            elif (self.snd_nxt < self.max_packets
                  and self.snd_nxt - self.snd_una < self.rwnd_packets):
                self._transmit(self.snd_nxt, retransmit=False)
                self.snd_nxt += 1
                pipe += 1
            else:
                break
        self._arm_rto()

    def _next_retransmission(self) -> Optional[int]:
        """Lowest lost-and-not-yet-retransmitted sequence, if any."""
        for seq in sorted(self._lost):
            if seq not in self._sacked and seq not in self._retransmitted:
                return seq
        return None

    def _transmit(self, seq: int, retransmit: bool) -> None:
        assert self.sim is not None
        now = self.sim.now
        if retransmit:
            self.retransmissions += 1
            self._retransmitted.add(seq)
        packet = Packet(self.flow_id, self._src_node, self._dst_node,
                        size_bytes=self.packet_bytes, kind="data",
                        seq=seq, sent_at_s=now, retransmit=retransmit)
        self.sim.send(packet)

    # ------------------------------------------------------------------
    # Sender: ACK processing
    # ------------------------------------------------------------------

    def _on_ack(self, packet: Packet) -> None:
        assert self.sim is not None
        now = self.sim.now
        ack = packet.ack
        if packet.ts_echo >= 0.0:
            sample = now - packet.ts_echo
            self.rtt_log.append(now, sample)
            tracer = self._tracer
            if tracer.enabled:
                tracer.emit(now, FLOW_RTT, flow=self.flow_id, seq=ack,
                            value=sample)
            self._update_rto_estimate(sample)
            self._on_rtt_sample(sample)
        # Ingest SACK blocks into the scoreboard.
        sack_blocks: Tuple[Tuple[int, int], ...] = getattr(
            packet, "sack", None) or ()
        for start, end in sack_blocks:
            for seq in range(max(start, self.snd_una), end):
                if seq not in self._sacked:
                    self._sacked.add(seq)
                    if seq > self._highest_sacked:
                        self._highest_sacked = seq

        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            for seq in range(self.snd_una, ack):
                self._sacked.discard(seq)
                self._lost.discard(seq)
                self._retransmitted.discard(seq)
            self.snd_una = ack
            self.dup_acks = 0
            if self.in_recovery:
                if ack > self.recover_seq:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                    self._retransmitted.clear()
            else:
                self._increase_on_ack(newly_acked)
            self._restart_rto()
            if (self.completed_at_s is None
                    and self.snd_una >= self.max_packets):
                self.completed_at_s = now
                if self.on_complete is not None:
                    self.on_complete(now)
        elif ack == self.snd_una and self.flight_size > 0:
            self.dup_acks += 1

        self._update_loss_marks()
        # Enter fast recovery on fresh loss evidence — but never re-enter
        # for losses within an episode already being handled (the NewReno
        # "recover" guard, which also covers the post-RTO window).
        if (not self.in_recovery and self.flight_size > 0
                and self.snd_una > self.recover_seq and self._has_loss()):
            self._enter_fast_recovery()
        self._log_cwnd()
        self._try_send()

    def _increase_on_ack(self, newly_acked: int) -> None:
        """Window growth outside recovery; Vegas overrides this."""
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

    def _on_rtt_sample(self, rtt_s: float) -> None:
        """Per-ACK RTT hook; Vegas overrides this."""

    def _enter_fast_recovery(self) -> None:
        self.fast_retransmits += 1
        self.ssthresh = max(self._pipe() / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.recover_seq = self.snd_nxt - 1
        self.in_recovery = True

    # ------------------------------------------------------------------
    # RTO machinery (RFC 6298)
    # ------------------------------------------------------------------

    def _update_rto_estimate(self, sample_s: float) -> None:
        if self.srtt is None:
            self.srtt = sample_s
            self.rttvar = sample_s / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample_s)
            self.srtt = 0.875 * self.srtt + 0.125 * sample_s
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, RTO_MIN_S),
                       RTO_MAX_S)

    def _arm_rto(self) -> None:
        if self._timer_armed or self.flight_size == 0:
            return
        self._schedule_rto()

    def _restart_rto(self) -> None:
        self._timer_epoch += 1
        self._timer_armed = False
        if self.flight_size > 0:
            self._schedule_rto()

    def _schedule_rto(self) -> None:
        assert self.sim is not None
        self._timer_armed = True
        epoch = self._timer_epoch
        self.sim.scheduler.schedule(self.rto, partial(self._on_rto, epoch))

    def _on_rto(self, epoch: int) -> None:
        if epoch != self._timer_epoch:
            return  # superseded by a restart
        self._timer_armed = False
        if self.flight_size == 0:
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_recovery = False
        # Losses up to snd_nxt now belong to this episode; do not trigger a
        # fresh fast-recovery halving for them.
        self.recover_seq = self.snd_nxt - 1
        # RFC 6675 post-RTO: everything outstanding and un-SACKed is
        # presumed lost, and retransmission bookkeeping is invalidated.
        for seq in range(self.snd_una, self.snd_nxt):
            if seq not in self._sacked:
                self._lost.add(seq)
        self._retransmitted.clear()
        self._transmit(self.snd_una, retransmit=True)
        self.rto = min(self.rto * 2.0, RTO_MAX_S)  # Karn backoff
        self._timer_epoch += 1
        self._schedule_rto()
        self._log_cwnd()

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------

    def _on_data(self, packet: Packet) -> None:
        assert self.sim is not None
        self._record_delivery(packet)
        seq = packet.seq
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += 1
            self._pending_ack += 1
            if (self._pending_ack >= self.delayed_ack_count
                    or self._out_of_order):
                self._send_ack(packet)
            else:
                self._arm_delack(packet)
        elif seq > self.rcv_nxt:
            self._reordered_arrivals += 1
            self._out_of_order.add(seq)
            self._send_ack(packet)  # immediate duplicate ACK
        else:
            self._send_ack(packet)  # stale duplicate; re-ACK

    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        """Up to three lowest contiguous SACK ranges above rcv_nxt."""
        if not self._out_of_order:
            return ()
        blocks: List[Tuple[int, int]] = []
        sorted_seqs = sorted(self._out_of_order)
        start = prev = sorted_seqs[0]
        for seq in sorted_seqs[1:]:
            if seq == prev + 1:
                prev = seq
                continue
            blocks.append((start, prev + 1))
            if len(blocks) == 3:
                return tuple(blocks)
            start = prev = seq
        blocks.append((start, prev + 1))
        return tuple(blocks[:3])

    def _record_delivery(self, packet: Packet) -> None:
        assert self.sim is not None
        bin_index = int(self.sim.now / self.throughput_bin_s)
        while len(self._bins) <= bin_index:
            self._bins.append(0.0)
        self._bins[bin_index] += packet.payload_bytes

    def _send_ack(self, data_packet: Packet) -> None:
        assert self.sim is not None
        self._pending_ack = 0
        self._delack_epoch += 1
        self._delack_armed = False
        ack = Packet(self.flow_id, self._dst_node, self._src_node,
                     size_bytes=ACK_BYTES, kind="ack",
                     ack=self.rcv_nxt, ts_echo=data_packet.sent_at_s)
        # SACK option: piggybacked as a structured field.
        ack.sack = self._sack_blocks()  # type: ignore[attr-defined]
        self.sim.send(ack)

    def _arm_delack(self, data_packet: Packet) -> None:
        if self._delack_armed:
            return
        assert self.sim is not None
        self._delack_armed = True
        epoch = self._delack_epoch
        self.sim.scheduler.schedule(
            0.2, partial(self._on_delack_timer, epoch, data_packet))

    def _on_delack_timer(self, epoch: int, data_packet: Packet) -> None:
        if epoch != self._delack_epoch:
            return
        if self._pending_ack > 0:
            self._send_ack(data_packet)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def reordered_arrivals(self) -> int:
        """Count of out-of-order data arrivals observed by the receiver."""
        return self._reordered_arrivals

    def throughput_series_bps(self) -> np.ndarray:
        """(B,) receiver payload goodput per bin (bits/second) — the
        quantity of paper Fig. 5(c)."""
        return np.asarray(self._bins) * 8.0 / self.throughput_bin_s

    def goodput_bps(self, duration_s: float) -> float:
        """Average acknowledged-payload goodput over the run."""
        if duration_s <= 0.0:
            raise ValueError("duration must be positive")
        return self.acked_payload_bytes * 8.0 / duration_s

# ----------------------------------------------------------------------
# seed copy of repro/transport/vegas.py
# ----------------------------------------------------------------------



import math
from typing import Optional

from repro.obs.trace import FLOW_STATE




class SeedTcpVegasFlow(SeedTcpNewRenoFlow):
    """A TCP Vegas flow (Brakmo-Peterson parameters by default).

    Args:
        alpha: Lower backlog target (packets).
        beta: Upper backlog target (packets).
        gamma: Slow-start exit threshold (packets).
        (remaining args as in :class:`SeedTcpNewRenoFlow`)
    """

    MIN_CWND = 2.0

    def __init__(self, *args, alpha: float = 2.0, beta: float = 4.0,
                 gamma: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= alpha <= beta:
            raise ValueError(f"need 0 <= alpha <= beta, got {alpha}, {beta}")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.base_rtt_s = math.inf
        self._window_min_rtt_s = math.inf
        self._next_adjust_s: Optional[float] = None
        self._in_vegas_slow_start = True
        self._grow_this_rtt = True  # Vegas doubles every *other* RTT

    def _on_rtt_sample(self, rtt_s: float) -> None:
        assert self.sim is not None
        self.base_rtt_s = min(self.base_rtt_s, rtt_s)
        self._window_min_rtt_s = min(self._window_min_rtt_s, rtt_s)
        now = self.sim.now
        if self._next_adjust_s is None:
            self._next_adjust_s = now + rtt_s
            return
        if now >= self._next_adjust_s:
            self._per_rtt_adjust(self._window_min_rtt_s)
            self._window_min_rtt_s = math.inf
            self._next_adjust_s = now + rtt_s

    def _per_rtt_adjust(self, rtt_s: float) -> None:
        if not math.isfinite(rtt_s) or rtt_s <= 0.0:
            return
        # Estimated packets this flow keeps queued in the network.
        diff = self.cwnd * (rtt_s - self.base_rtt_s) / rtt_s
        tracer = self._tracer
        if tracer.enabled:
            assert self.sim is not None
            # The backlog estimate is the signal Vegas acts on — the
            # quantity that misreads LEO path lengthening as congestion.
            tracer.emit(self.sim.now, FLOW_STATE, flow=self.flow_id,
                        value=diff, reason="vegas_backlog")
        if self._in_vegas_slow_start:
            if diff > self.gamma:
                self._in_vegas_slow_start = False
                self.ssthresh = min(self.ssthresh, self.cwnd)
                if tracer.enabled:
                    assert self.sim is not None
                    tracer.emit(self.sim.now, FLOW_STATE, flow=self.flow_id,
                                value=self.cwnd, reason="vegas_exit_ss")
            else:
                self._grow_this_rtt = not self._grow_this_rtt
            return
        if diff < self.alpha:
            self.cwnd += 1.0
        elif diff > self.beta:
            self.cwnd = max(self.cwnd - 1.0, self.MIN_CWND)

    def _increase_on_ack(self, newly_acked: int) -> None:
        if self._in_vegas_slow_start:
            if self._grow_this_rtt:
                self.cwnd += newly_acked
            return
        # Congestion avoidance growth is handled per RTT in
        # _per_rtt_adjust; per-ACK growth stays flat.

    def _enter_fast_recovery(self) -> None:
        super()._enter_fast_recovery()
        self._in_vegas_slow_start = False

# ----------------------------------------------------------------------
# seed copy of repro/transport/bbr.py
# ----------------------------------------------------------------------



import math
from collections import deque
from typing import Deque, Optional, Tuple

from repro.obs.trace import FLOW_STATE
from repro.simulation.simulator import PacketSimulator



#: STARTUP/DRAIN pacing gains (2/ln2 and its inverse).
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN

#: PROBE_BW gain cycle.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: Windows for the two filters.
BW_WINDOW_ROUNDS = 10
MIN_RTT_WINDOW_S = 10.0


class SeedTcpBbrFlow(SeedTcpNewRenoFlow):
    """A (simplified) BBR flow between two ground stations.

    Accepts the same arguments as :class:`SeedTcpNewRenoFlow`.  The inherited
    ``cwnd`` is maintained at BBR's in-flight cap (``2 x BtlBw x RTprop``
    in packets); sending is paced rather than window-burst.
    """

    MIN_CWND = 4.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._mode = "startup"
        self._pacing_rate_bps = 10.0 * self.packet_bytes * 8.0  # bootstrap
        self._bw_filter: Deque[Tuple[float, float]] = deque()
        self._rtt_filter: Deque[Tuple[float, float]] = deque()
        self._cycle_index = 0
        self._cycle_started_s = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._delivered_at_round_start = 0
        self._round_start_s = 0.0
        self._pacer_armed = False
        self._next_send_s = 0.0

    # ------------------------------------------------------------------
    # Filters and model
    # ------------------------------------------------------------------

    @property
    def btl_bw_bps(self) -> float:
        """Current bottleneck-bandwidth estimate (windowed max)."""
        if not self._bw_filter:
            return self._pacing_rate_bps
        return max(bw for _, bw in self._bw_filter)

    @property
    def rt_prop_s(self) -> float:
        """Current round-trip propagation estimate (windowed min)."""
        if not self._rtt_filter:
            return self.srtt if self.srtt is not None else 0.1
        return min(rtt for _, rtt in self._rtt_filter)

    def _bdp_packets(self) -> float:
        return max(1.0, self.btl_bw_bps * self.rt_prop_s
                   / (self.packet_bytes * 8.0))

    def _on_rtt_sample(self, rtt_s: float) -> None:
        assert self.sim is not None
        now = self.sim.now
        self._rtt_filter.append((now, rtt_s))
        while self._rtt_filter and \
                self._rtt_filter[0][0] < now - MIN_RTT_WINDOW_S:
            self._rtt_filter.popleft()
        # One delivery-rate sample per round trip.
        round_duration = now - self._round_start_s
        if round_duration >= (self.srtt or rtt_s):
            delivered_packets = self.snd_una - self._delivered_at_round_start
            if delivered_packets > 0 and round_duration > 0:
                bw = (delivered_packets * self.packet_bytes * 8.0
                      / round_duration)
                self._bw_filter.append((now, bw))
                window = BW_WINDOW_ROUNDS * max(self.srtt or rtt_s, 1e-3)
                while self._bw_filter and \
                        self._bw_filter[0][0] < now - window:
                    self._bw_filter.popleft()
                self._advance_state_machine(bw)
            self._delivered_at_round_start = self.snd_una
            self._round_start_s = now
        self._update_model()

    def _advance_state_machine(self, latest_bw_bps: float) -> None:
        assert self.sim is not None
        now = self.sim.now
        if self._mode == "startup":
            if latest_bw_bps > self._full_bw * 1.25:
                self._full_bw = latest_bw_bps
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._set_mode("drain")
        elif self._mode == "drain":
            if self.flight_size <= self._bdp_packets():
                self._set_mode("probe_bw")
                self._cycle_index = 0
                self._cycle_started_s = now
        elif self._mode == "probe_bw":
            if now - self._cycle_started_s >= self.rt_prop_s:
                self._cycle_index = (self._cycle_index + 1) \
                    % len(PROBE_BW_GAINS)
                self._cycle_started_s = now

    def _set_mode(self, mode: str) -> None:
        """Transition the BBR state machine, tracing the change."""
        self._mode = mode
        tracer = self._tracer
        if tracer.enabled:
            assert self.sim is not None
            tracer.emit(self.sim.now, FLOW_STATE, flow=self.flow_id,
                        value=self.btl_bw_bps, reason=f"bbr_{mode}")

    def _pacing_gain(self) -> float:
        if self._mode == "startup":
            return STARTUP_GAIN
        if self._mode == "drain":
            return DRAIN_GAIN
        return PROBE_BW_GAINS[self._cycle_index]

    def _update_model(self) -> None:
        self._pacing_rate_bps = max(
            self._pacing_gain() * self.btl_bw_bps,
            2.0 * self.packet_bytes * 8.0 / max(self.rt_prop_s, 1e-3))
        # In-flight cap: 2 x BDP (cwnd_gain = 2).
        self.cwnd = max(self.MIN_CWND, 2.0 * self._bdp_packets())
        self.ssthresh = self.cwnd  # keep the base's bookkeeping harmless

    # ------------------------------------------------------------------
    # Rate-based loss response (BBR ignores loss for its rate model)
    # ------------------------------------------------------------------

    def _increase_on_ack(self, newly_acked: int) -> None:
        pass  # the model, not ACK counting, sets cwnd

    def _enter_fast_recovery(self) -> None:
        # Keep the scoreboard/retransmission state machine, skip the
        # multiplicative decrease.
        self.fast_retransmits += 1
        self.recover_seq = self.snd_nxt - 1
        self.in_recovery = True

    def _on_ack(self, packet) -> None:
        super()._on_ack(packet)
        # Undo any cwnd mutation the base recovery/exit logic applied.
        self._update_model()

    def _on_rto(self, epoch: int) -> None:
        cwnd_before = self.cwnd
        super()._on_rto(epoch)
        if self.cwnd < cwnd_before:
            self.cwnd = max(self.MIN_CWND, cwnd_before / 2.0)

    # ------------------------------------------------------------------
    # Pacing
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        assert self.sim is not None
        if self.sim.now >= self.stop_s:
            return
        self._arm_pacer()
        self._arm_rto()

    def _arm_pacer(self) -> None:
        if self._pacer_armed:
            return
        assert self.sim is not None
        self._pacer_armed = True
        delay = max(0.0, self._next_send_s - self.sim.now)
        self.sim.scheduler.schedule(delay, self._pacer_fire)

    def _pacer_fire(self) -> None:
        assert self.sim is not None
        self._pacer_armed = False
        now = self.sim.now
        if now >= self.stop_s:
            return
        window = self._usable_window()
        pipe = self._pipe()
        sent = False
        if pipe < window:
            seq = self._next_retransmission()
            if seq is not None:
                self._transmit(seq, retransmit=True)
                sent = True
            elif (self.snd_nxt < self.max_packets
                  and self.snd_nxt - self.snd_una < self.rwnd_packets):
                self._transmit(self.snd_nxt, retransmit=False)
                self.snd_nxt += 1
                sent = True
        if sent:
            interval = self.packet_bytes * 8.0 / self._pacing_rate_bps
            self._next_send_s = now + interval
            self._arm_pacer()
            self._arm_rto()
        # If nothing was sendable, the pacer re-arms on the next ACK via
        # _try_send.
