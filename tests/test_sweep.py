"""Tests for the parallel snapshot-sweep engine (repro.sweep)."""

import numpy as np
import pytest

from repro.sweep import (
    HAVE_SHARED_MEMORY,
    ISL_BUILDERS,
    NetworkSpec,
    SharedArrayPack,
    attach_arrays,
    isl_builder_name,
    register_isl_builder,
    resolve_workers,
    shard_snapshots,
    sweep_timelines,
)
from repro.topology.dynamic_state import DynamicState, snapshot_times
from repro.topology.isl import no_isls, plus_grid_isls, single_ring_isls


class TestShardSnapshots:
    def test_covers_exactly_once_in_order(self):
        for total in (1, 2, 7, 100):
            for chunks in (1, 2, 3, 4, 16):
                shards = shard_snapshots(total, chunks)
                indices = [i for start, stop in shards
                           for i in range(start, stop)]
                assert indices == list(range(total))

    def test_balanced(self):
        shards = shard_snapshots(10, 3)
        sizes = [stop - start for start, stop in shards]
        assert sizes == [4, 3, 3]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_snapshots(self):
        assert len(shard_snapshots(2, 8)) == 2
        assert shard_snapshots(0, 4) == [(0, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_snapshots(-1, 2)
        with pytest.raises(ValueError):
            shard_snapshots(5, 0)


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_means_all_cores(self):
        import os
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestNetworkSpec:
    def test_roundtrip_is_bit_identical(self, small_network):
        spec = NetworkSpec.from_network(small_network)
        rebuilt = spec.build()
        original = small_network.snapshot(17.0)
        copy = rebuilt.snapshot(17.0)
        assert np.array_equal(original.satellite_positions_m,
                              copy.satellite_positions_m)
        assert np.array_equal(original.isl_lengths_m, copy.isl_lengths_m)
        for gid in range(small_network.num_ground_stations):
            assert np.array_equal(original.gsl_edges[gid].satellite_ids,
                                  copy.gsl_edges[gid].satellite_ids)
            assert np.array_equal(original.gsl_edges[gid].lengths_m,
                                  copy.gsl_edges[gid].lengths_m)

    def test_spec_pickles(self, small_network):
        import pickle
        spec = NetworkSpec.from_network(small_network)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_builtin_builders_resolve_by_name(self):
        assert isl_builder_name(plus_grid_isls) == "plus_grid"
        assert isl_builder_name(single_ring_isls) == "single_ring"
        assert isl_builder_name(no_isls) == "none"

    def test_unregistered_builder_raises(self, small_constellation,
                                         small_stations):
        from repro.topology.network import LeoNetwork

        def custom_builder(constellation):
            return plus_grid_isls(constellation)

        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0,
                             isl_builder=custom_builder)
        with pytest.raises(ValueError, match="workers=1"):
            NetworkSpec.from_network(network)

    def test_register_then_resolve(self, small_constellation,
                                   small_stations):
        from repro.topology.network import LeoNetwork

        def custom_builder(constellation):
            return single_ring_isls(constellation)

        register_isl_builder("test_custom_ring", custom_builder)
        try:
            network = LeoNetwork(small_constellation, small_stations,
                                 min_elevation_deg=10.0,
                                 isl_builder=custom_builder)
            spec = NetworkSpec.from_network(network)
            assert spec.isl_builder == "test_custom_ring"
            rebuilt = spec.build()
            assert np.array_equal(rebuilt.isl_pairs, network.isl_pairs)
        finally:
            del ISL_BUILDERS["test_custom_ring"]

    def test_register_name_conflict_rejected(self):
        with pytest.raises(ValueError):
            register_isl_builder("plus_grid", no_isls)
        # Re-registering the same callable is an idempotent no-op.
        register_isl_builder("plus_grid", plus_grid_isls)

    def test_unknown_builder_name_rejected(self, small_network):
        spec = NetworkSpec.from_network(small_network)
        import dataclasses
        with pytest.raises(ValueError, match="unknown ISL builder"):
            dataclasses.replace(spec, isl_builder="no_such_builder")


class TestSweepTimelines:
    def _serial(self, network, pairs, duration_s, step_s):
        return DynamicState(network, pairs, duration_s=duration_s,
                            step_s=step_s).compute()

    def test_parallel_matches_serial_bitwise(self, small_network):
        pairs = [(0, 3), (1, 4), (2, 5)]
        times = snapshot_times(10.0, 1.0)
        serial = self._serial(small_network, pairs, 10.0, 1.0)
        spec = NetworkSpec.from_network(small_network)
        parallel = sweep_timelines(spec, pairs, times, workers=3)
        assert set(parallel) == set(serial)
        for pair in pairs:
            assert np.array_equal(parallel[pair].distances_m,
                                  serial[pair].distances_m,
                                  equal_nan=True)
            assert parallel[pair].paths == serial[pair].paths
            assert np.array_equal(parallel[pair].times_s,
                                  serial[pair].times_s)

    def test_more_workers_than_snapshots(self, small_network):
        pairs = [(0, 3)]
        times = snapshot_times(2.0, 1.0)  # 2 snapshots
        spec = NetworkSpec.from_network(small_network)
        parallel = sweep_timelines(spec, pairs, times, workers=8)
        serial = self._serial(small_network, pairs, 2.0, 1.0)
        assert np.array_equal(parallel[(0, 3)].distances_m,
                              serial[(0, 3)].distances_m, equal_nan=True)

    def test_single_snapshot_stays_serial(self, small_network):
        spec = NetworkSpec.from_network(small_network)
        result = sweep_timelines(spec, [(0, 3)], np.array([0.0]),
                                 workers=4)
        assert len(result[(0, 3)].times_s) == 1

    def test_empty_pairs_rejected(self, small_network):
        spec = NetworkSpec.from_network(small_network)
        with pytest.raises(ValueError):
            sweep_timelines(spec, [], snapshot_times(5.0, 1.0))

    def test_metrics_recorded(self, small_network):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        spec = NetworkSpec.from_network(small_network)
        times = snapshot_times(8.0, 1.0)
        sweep_timelines(spec, [(0, 3)], times, workers=2,
                        metrics=registry)
        assert registry.gauges["sweep.workers"].value == 2.0
        assert registry.gauges["sweep.wall_s"].value > 0.0
        assert registry.counters["sweep.snapshots"].value == len(times)
        counts = 0.0
        for index in range(2):
            prefix = f"sweep.worker.{index}."
            assert len(registry.series_logs[prefix + "wall_s"].values) == 1
            assert len(registry.series_logs[prefix + "build_s"].values) == 1
            counts += registry.series_logs[prefix + "snapshots"].values[0]
        assert counts == len(times)

    def test_serial_path_also_records_metrics(self, small_network):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        spec = NetworkSpec.from_network(small_network)
        sweep_timelines(spec, [(0, 3)], snapshot_times(3.0, 1.0),
                        workers=1, metrics=registry)
        assert registry.gauges["sweep.workers"].value == 1.0
        assert "sweep.worker.0.wall_s" in registry.series_logs


@pytest.mark.skipif(not HAVE_SHARED_MEMORY,
                    reason="multiprocessing.shared_memory unavailable")
class TestSharedMemoryArrays:
    def test_round_trip(self):
        source = {
            "times_s": np.arange(10, dtype=np.float64) * 0.1,
            "isl_pairs": np.array([[0, 1], [1, 2]], dtype=np.int64),
        }
        pack = SharedArrayPack.create(source)
        try:
            with attach_arrays(pack.descriptors) as attached:
                for name, array in source.items():
                    view = attached.arrays[name]
                    assert np.array_equal(view, array)
                    assert view.dtype == array.dtype
                    assert not view.flags.writeable
        finally:
            pack.unlink()

    def test_zero_size_array(self):
        pack = SharedArrayPack.create(
            {"empty": np.empty((0, 2), dtype=np.int64)})
        try:
            assert pack.descriptors["empty"].shm_name is None
            with attach_arrays(pack.descriptors) as attached:
                assert attached.arrays["empty"].shape == (0, 2)
                assert attached.arrays["empty"].dtype == np.int64
        finally:
            pack.unlink()

    def test_unlink_idempotent(self):
        pack = SharedArrayPack.create({"x": np.ones(4)})
        pack.unlink()
        pack.unlink()

    def test_sweep_parity_with_and_without_shared_memory(
            self, small_network):
        pairs = [(0, 3), (1, 4)]
        times = snapshot_times(6.0, 1.0)
        spec = NetworkSpec.from_network(small_network)
        shared = sweep_timelines(spec, pairs, times, workers=2,
                                 use_shared_memory=True)
        pickled = sweep_timelines(spec, pairs, times, workers=2,
                                  use_shared_memory=False)
        for pair in pairs:
            assert np.array_equal(shared[pair].distances_m,
                                  pickled[pair].distances_m,
                                  equal_nan=True)
            assert shared[pair].paths == pickled[pair].paths

    def test_spec_static_isl_pairs_matches_build(self, small_network):
        spec = NetworkSpec.from_network(small_network)
        assert np.array_equal(spec.static_isl_pairs(),
                              small_network.isl_pairs)
        rebuilt = spec.build(isl_pairs=spec.static_isl_pairs())
        assert np.array_equal(rebuilt.isl_pairs, small_network.isl_pairs)


class TestDynamicStateWorkers:
    def test_compute_workers_matches_serial(self, small_network):
        pairs = [(0, 3), (2, 4)]
        serial = DynamicState(small_network, pairs, duration_s=6.0,
                              step_s=1.0).compute()
        parallel = DynamicState(small_network, pairs, duration_s=6.0,
                                step_s=1.0).compute(workers=2)
        for pair in pairs:
            assert np.array_equal(parallel[pair].distances_m,
                                  serial[pair].distances_m,
                                  equal_nan=True)
            assert parallel[pair].paths == serial[pair].paths

    def test_compute_rejects_negative_workers(self, small_network):
        state = DynamicState(small_network, [(0, 3)], duration_s=2.0,
                             step_s=1.0)
        with pytest.raises(ValueError):
            state.compute(workers=-1)


class TestSweepCli:
    def test_sweep_command_serial(self, capsys, tmp_path):
        from repro.cli import main
        out = tmp_path / "sweep.json"
        code = main(["sweep", "K1", "--cities", "6", "--duration", "4",
                     "--step", "2", "-o", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "6 pairs x 2 snapshots" in captured
        assert "1 worker(s)" in captured
        import json
        payload = json.loads(out.read_text())
        assert payload["workers"] == 1
        assert len(payload["pairs"]) == 6
        assert "sweep.wall_s" in payload["metrics"]["gauges"]
