"""Tests for the packet simulator's forwarding plane and controller."""

import numpy as np
import pytest

from repro.simulation.packet import Packet
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.routing.engine import RoutingEngine
from repro.simulation.forwarding import ForwardingController
from repro.simulation.events import EventScheduler


class TestLinkConfig:
    def test_defaults_match_paper(self):
        config = LinkConfig()
        assert config.isl_rate_bps == 10_000_000.0
        assert config.isl_queue_packets == 100
        assert config.gsl_queue_packets == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(isl_rate_bps=0.0)
        with pytest.raises(ValueError):
            LinkConfig(gsl_queue_packets=-1)


class TestForwardingController:
    def test_requires_registration(self, small_network):
        sched = EventScheduler()
        controller = ForwardingController(small_network, sched)
        controller.start()
        with pytest.raises(KeyError):
            controller.next_hop_from_satellite(0, 3)

    def test_next_hops_available_after_start(self, small_network):
        sched = EventScheduler()
        controller = ForwardingController(small_network, sched)
        controller.register_destination(3)
        controller.start()
        hop = controller.next_hop_from_ground(0, 3)
        assert hop is not None
        assert hop < small_network.num_satellites

    def test_matches_routing_engine(self, small_network):
        sched = EventScheduler()
        controller = ForwardingController(small_network, sched)
        controller.register_destination(2)
        controller.start()
        engine = RoutingEngine(small_network)
        snap = small_network.snapshot(0.0)
        routing = engine.route_to(snap, 2)
        for sat in range(0, small_network.num_satellites, 11):
            expected = int(routing.next_hop[sat])
            actual = controller.next_hop_from_satellite(sat, 2)
            if expected == -1:
                assert actual is None
            else:
                assert actual == expected

    def test_periodic_update_scheduled(self, small_network):
        sched = EventScheduler()
        controller = ForwardingController(small_network, sched,
                                          update_interval_s=0.5)
        controller.register_destination(1)
        controller.start()
        assert controller.snapshot.time_s == 0.0
        sched.run(until_s=1.6)
        assert controller.snapshot.time_s == pytest.approx(1.5)

    def test_register_after_start(self, small_network):
        sched = EventScheduler()
        controller = ForwardingController(small_network, sched)
        controller.register_destination(0)
        controller.start()
        controller.register_destination(4)
        assert controller.next_hop_from_ground(1, 4) is not None

    def test_double_start_rejected(self, small_network):
        sched = EventScheduler()
        controller = ForwardingController(small_network, sched)
        with pytest.raises(RuntimeError):
            controller.start()
            controller.start()

    def test_bad_interval_rejected(self, small_network):
        with pytest.raises(ValueError):
            ForwardingController(small_network, EventScheduler(),
                                 update_interval_s=0.0)

    def test_update_times_stay_on_absolute_grid(self, small_network):
        """Regression: relative rescheduling accumulated float drift off
        the paper's 0.1 s grid; updates must land exactly on
        ``k * interval`` for 1000 updates, matching ``snapshot_times``."""
        from repro.obs.trace import FWD_UPDATE, RingBufferTracer
        from repro.topology.dynamic_state import snapshot_times
        tracer = RingBufferTracer()
        sched = EventScheduler()
        controller = ForwardingController(small_network, sched,
                                          update_interval_s=0.1,
                                          tracer=tracer)
        controller.start()
        sched.run(until_s=99.95)
        times = [event.time_s for event in tracer.events_of(FWD_UPDATE)]
        assert len(times) == 1000
        # Exact equality, not approx: both sides are k * 0.1 in float64.
        assert times == [k * 0.1 for k in range(1000)]
        assert np.array_equal(np.asarray(times), snapshot_times(100.0, 0.1))


class TestPacketDelivery:
    def test_single_packet_end_to_end(self, small_network):
        sim = PacketSimulator(small_network)
        received = []
        src_node = sim.gs_node_id(0)
        dst_node = sim.gs_node_id(3)
        sim.register_handler(dst_node, 42, lambda p: received.append(
            (sim.now, p)))
        sim.scheduler.schedule_at(0.0, lambda: sim.send(
            Packet(42, src_node, dst_node, size_bytes=1500)))
        sim.run(2.0)
        assert len(received) == 1
        arrival, packet = received[0]
        # Arrival = serialization per hop + propagation; must be close to
        # the computed one-way delay and certainly under 100 ms here.
        assert 0.0 < arrival < 0.1
        assert packet.hops >= 2  # at least up and down

    def test_delivery_latency_matches_computed_path(self, small_network):
        engine = RoutingEngine(small_network)
        snap = small_network.snapshot(0.0)
        one_way = engine.pair_distance_m(snap, 0, 3) / 299_792_458.0
        # Use a very fast line rate so serialization is negligible.
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=1e12,
                                         gsl_rate_bps=1e12))
        received = []
        sim.register_handler(sim.gs_node_id(3), 1,
                             lambda p: received.append(sim.now))
        sim.scheduler.schedule_at(0.0, lambda: sim.send(
            Packet(1, sim.gs_node_id(0), sim.gs_node_id(3),
                   size_bytes=1500)))
        sim.run(1.0)
        assert received[0] == pytest.approx(one_way, rel=1e-3)

    def test_unregistered_flow_silently_dropped(self, small_network):
        sim = PacketSimulator(small_network)
        sim.register_handler(sim.gs_node_id(3), 1, lambda p: None)
        # Send to gid 3 but with an unknown flow id: forwarded, no handler.
        sim.scheduler.schedule_at(0.0, lambda: sim.send(
            Packet(999, sim.gs_node_id(0), sim.gs_node_id(3),
                   size_bytes=100)))
        sim.run(1.0)
        assert sim.stats.packets_delivered == 0

    def test_duplicate_handler_rejected(self, small_network):
        sim = PacketSimulator(small_network)
        sim.register_handler(sim.gs_node_id(0), 1, lambda p: None)
        with pytest.raises(ValueError):
            sim.register_handler(sim.gs_node_id(0), 1, lambda p: None)

    def test_queue_drop_accounting(self, small_network):
        # A tiny queue and a burst of packets forces drops at the source
        # GSL device.
        sim = PacketSimulator(small_network,
                              LinkConfig(gsl_rate_bps=100_000.0,
                                         gsl_queue_packets=2))
        sim.register_handler(sim.gs_node_id(3), 1, lambda p: None)

        def burst():
            for _ in range(10):
                sim.send(Packet(1, sim.gs_node_id(0), sim.gs_node_id(3),
                                size_bytes=1500))

        sim.scheduler.schedule_at(0.0, burst)
        sim.run(1.0)
        assert sim.stats.packets_dropped_queue == 7  # 1 in tx + 2 queued

    def test_device_accessors(self, small_network):
        sim = PacketSimulator(small_network)
        a, b = (int(x) for x in small_network.isl_pairs[0])
        assert sim.isl_device(a, b).node_id == a
        assert sim.isl_device(b, a).node_id == b
        assert sim.gsl_device(sim.gs_node_id(0)).node_id == \
            sim.gs_node_id(0)

    def test_gid_of_node(self, small_network):
        sim = PacketSimulator(small_network)
        assert sim.gid_of_node(sim.gs_node_id(4)) == 4
        with pytest.raises(ValueError):
            sim.gid_of_node(0)


class TestRateOverrideValidation:
    def test_bad_isl_override_rejected(self, small_network):
        with pytest.raises(ValueError):
            PacketSimulator(small_network,
                            isl_rate_overrides={(0, 99999): 1e6})

    def test_bad_gsl_override_rejected(self, small_network):
        """Regression: a typo'd node id used to be silently ignored while
        the ISL equivalent raised."""
        with pytest.raises(ValueError):
            PacketSimulator(small_network,
                            gsl_rate_overrides={small_network.num_nodes: 1e6})
        with pytest.raises(ValueError):
            PacketSimulator(small_network, gsl_rate_overrides={-1: 1e6})

    def test_valid_gsl_override_applied(self, small_network):
        node = small_network.gs_node_id(0)
        sim = PacketSimulator(small_network,
                              gsl_rate_overrides={node: 123_456.0})
        assert sim.gsl_device(node).rate_bps == 123_456.0


class TestDropAccounting:
    def test_no_route_drop_when_disconnected(self, small_constellation,
                                             small_stations):
        """Packets addressed across a bent-pipe gap are dropped and
        counted (paper: disconnections surface as loss to transport)."""
        from repro.topology.isl import no_isls
        from repro.topology.network import LeoNetwork
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=15.0, isl_builder=no_isls)
        sim = PacketSimulator(network)
        sim.register_handler(sim.gs_node_id(2), 1, lambda p: None)
        # Quito (0) -> Singapore (2): no ISLs, no common satellite.
        sim.scheduler.schedule_at(0.0, lambda: sim.send(
            Packet(1, sim.gs_node_id(0), sim.gs_node_id(2),
                   size_bytes=100)))
        sim.run(1.0)
        assert sim.stats.packets_dropped_no_route == 1
        assert sim.stats.packets_delivered == 0

    def test_no_handler_drop_counted(self, small_network):
        """Regression: a packet reaching its destination with no handler
        used to vanish from every counter."""
        sim = PacketSimulator(small_network)
        sim.register_handler(sim.gs_node_id(3), 1, lambda p: None)
        sim.scheduler.schedule_at(0.0, lambda: sim.send(
            Packet(999, sim.gs_node_id(0), sim.gs_node_id(3),
                   size_bytes=100)))
        sim.run(1.0)
        assert sim.stats.packets_delivered == 0
        assert sim.stats.packets_dropped_no_handler == 1
        assert sim.stats.packets_dropped == 1

    def test_ttl_guard(self, small_network):
        """A packet whose hop budget is exhausted is dropped, not looped
        forever (protects against transient forwarding inconsistency)."""
        from repro.simulation.simulator import MAX_HOPS
        sim = PacketSimulator(small_network)
        sim.register_handler(sim.gs_node_id(3), 1, lambda p: None)
        packet = Packet(1, sim.gs_node_id(0), sim.gs_node_id(3),
                        size_bytes=100)
        packet.hops = MAX_HOPS  # pre-exhausted
        sim.scheduler.schedule_at(0.0, lambda: sim.send(packet))
        sim.run(1.0)
        assert sim.stats.packets_dropped_ttl == 1


class TestPerfAccounting:
    def test_perf_summary_populated_by_run(self, small_network):
        sim = PacketSimulator(small_network)
        sim.register_handler(sim.gs_node_id(3), 1, lambda p: None)
        sim.scheduler.schedule_at(0.0, lambda: sim.send(
            Packet(1, sim.gs_node_id(0), sim.gs_node_id(3),
                   size_bytes=100)))
        sim.run(1.0)
        summary = sim.stats.perf_summary()
        assert summary["wall_time_s"] > 0.0
        assert summary["events_processed"] == \
            sim.scheduler.events_processed > 0
        assert summary["events_per_wall_s"] > 0.0
        # ~10 forwarding updates over 1 s at 0.1 s granularity (float
        # accumulation may squeeze in one more just below the horizon),
        # one registered destination, one batched dijkstra each.
        assert summary["trees_computed"] in (10, 11)
        assert summary["dijkstra_calls"] == summary["trees_computed"]
        assert summary["routing_compute_s"] > 0.0

    def test_routing_counters_shared_with_engine(self, small_network):
        sim = PacketSimulator(small_network)
        sim.register_handler(sim.gs_node_id(2), 7, lambda p: None)
        sim.run(0.05)
        assert sim.stats.routing.trees_computed >= 1
        assert sim.stats.routing.csr_rebuilds_avoided >= 0
