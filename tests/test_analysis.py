"""Tests for the analysis package (paper §4-§5 metrics)."""

import numpy as np
import pytest

from repro.analysis.bandwidth import unused_bandwidth_stats
from repro.analysis.paths import pair_path_stats
from repro.analysis.rtt import (
    MIN_PAIR_SEPARATION_M,
    ecdf,
    pair_rtt_stats,
)
from repro.analysis.timestep import (
    changes_per_step,
    compare_timesteps,
    missed_changes,
    subsample_satellite_sets,
)
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.topology.dynamic_state import PairTimeline


def _timeline(src, dst, rtts_ms, paths):
    times = np.arange(len(rtts_ms), dtype=float)
    distances = np.array([
        r / 1000.0 / 2.0 * 299_792_458.0 if np.isfinite(r) else np.inf
        for r in rtts_ms
    ])
    return PairTimeline(src_gid=src, dst_gid=dst, times_s=times,
                        distances_m=distances, paths=list(paths))


@pytest.fixture
def stations():
    return [
        GroundStation(0, "A", GeodeticPosition(0.0, 0.0)),
        GroundStation(1, "B", GeodeticPosition(0.0, 90.0)),
        GroundStation(2, "C-near-A", GeodeticPosition(0.5, 0.5)),
    ]


class TestEcdf:
    def test_basic(self):
        xs, ys = ecdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(xs, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(ys, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        xs, ys = ecdf([])
        assert len(xs) == 0 and len(ys) == 0

    def test_last_fraction_is_one(self):
        _, ys = ecdf(np.random.default_rng(1).normal(size=50))
        assert ys[-1] == 1.0


class TestPairRttStats:
    def test_basic_stats(self, stations):
        timelines = {(0, 1): _timeline(0, 1, [80, 90, 100, 85],
                                       [(9,), (9,), (10,), (9,)])}
        stats = pair_rtt_stats(timelines, stations)
        assert len(stats) == 1
        s = stats[0]
        assert s.min_rtt_s == pytest.approx(0.080)
        assert s.max_rtt_s == pytest.approx(0.100)
        assert s.rtt_spread_s == pytest.approx(0.020)
        assert s.max_over_min == pytest.approx(100 / 80)
        assert s.connected_fraction == 1.0
        # Quarter circumference geodesic RTT is ~66.7 ms, so max RTT over
        # geodesic is ~1.5.
        assert 1.3 < s.max_over_geodesic < 1.7

    def test_close_pairs_excluded(self, stations):
        timelines = {(0, 2): _timeline(0, 2, [10, 10], [(1,), (1,)])}
        assert pair_rtt_stats(timelines, stations) == []
        kept = pair_rtt_stats(timelines, stations, min_separation_m=1000.0)
        assert len(kept) == 1

    def test_disconnection_handling(self, stations):
        timelines = {(0, 1): _timeline(0, 1, [80, np.inf, 90],
                                       [(9,), None, (9,)])}
        stats = pair_rtt_stats(timelines, stations)
        assert stats[0].connected_fraction == pytest.approx(2 / 3)
        assert stats[0].max_rtt_s == pytest.approx(0.090)
        strict = pair_rtt_stats(timelines, stations,
                                require_always_connected=True)
        assert strict == []

    def test_never_connected_skipped(self, stations):
        timelines = {(0, 1): _timeline(0, 1, [np.inf], [None])}
        assert pair_rtt_stats(timelines, stations) == []


class TestPairPathStats:
    def test_counts_and_hops(self):
        paths = [(100, 1, 2, 101), (100, 1, 2, 101), (100, 3, 101),
                 (100, 3, 101)]
        timelines = {(0, 1): _timeline(0, 1, [80, 80, 70, 70], paths)}
        stats = pair_path_stats(timelines, num_satellites=100)
        assert len(stats) == 1
        s = stats[0]
        assert s.num_path_changes == 1
        assert s.min_hops == 2
        assert s.max_hops == 3
        assert s.hop_spread == 1
        assert s.hop_ratio == pytest.approx(1.5)

    def test_disconnections_count_as_changes(self):
        paths = [(100, 1, 101), None, (100, 1, 101)]
        timelines = {(0, 1): _timeline(0, 1, [80, np.inf, 80], paths)}
        stats = pair_path_stats(timelines, num_satellites=100)
        assert stats[0].num_path_changes == 2

    def test_never_connected_skipped(self):
        timelines = {(0, 1): _timeline(0, 1, [np.inf, np.inf],
                                       [None, None])}
        assert pair_path_stats(timelines, num_satellites=100) == []


class TestTimestep:
    def test_subsample(self):
        sets = [frozenset({i}) for i in range(10)]
        sub = subsample_satellite_sets(sets, 3)
        assert sub == [frozenset({0}), frozenset({3}), frozenset({6}),
                       frozenset({9})]

    def test_subsample_validation(self):
        with pytest.raises(ValueError):
            subsample_satellite_sets([], 0)

    def test_missed_changes_none_for_slow_changes(self):
        # One change, far apart: coarse step still sees it.
        sets = ([frozenset({1})] * 5) + ([frozenset({2})] * 5)
        assert missed_changes(sets, 2) == 0

    def test_missed_changes_for_flapping(self):
        # Change at every fine step; factor-2 subsampling keeps only half
        # the transitions.
        sets = [frozenset({i % 2}) for i in range(9)]
        assert missed_changes(sets, 2) == 8  # coarse sees constant {0}

    def test_changes_per_step(self):
        a = [frozenset({1}), frozenset({1}), frozenset({2})]
        b = [frozenset({5}), frozenset({6}), frozenset({6})]
        counts = changes_per_step([a, b])
        np.testing.assert_array_equal(counts, [1, 1])

    def test_changes_per_step_validation(self):
        with pytest.raises(ValueError):
            changes_per_step([[frozenset()], [frozenset(), frozenset()]])

    def test_compare_timesteps(self):
        paths_fast = [(100, i % 2, 101) for i in range(20)]
        paths_slow = [(100, 7, 101)] * 20
        timelines = {
            (0, 1): _timeline(0, 1, [50] * 20, paths_fast),
            (2, 3): _timeline(2, 3, [60] * 20, paths_slow),
        }
        comparisons = compare_timesteps(timelines, num_satellites=100,
                                        factors=(2, 5))
        assert comparisons[0].factor == 2
        # The flapping pair misses changes; the stable pair misses none.
        assert comparisons[0].fraction_missing_at_least(1) == 0.5
        # The pair flips parity every step: factor-2 subsampling sees a
        # constant path and misses all 19 transitions.
        np.testing.assert_array_equal(
            sorted(comparisons[0].missed_per_pair), [0, 19])


class TestUnusedBandwidth:
    def test_basic(self):
        series = np.array([0.0, 5e6, 2e6, np.nan, 0.05e6])
        stats = unused_bandwidth_stats(series, 10e6)
        assert stats.connected_fraction == pytest.approx(0.8)
        assert stats.fraction_above_third == pytest.approx(1 / 4)
        assert stats.fraction_fully_used == pytest.approx(2 / 4)
        assert stats.mean_unused_bps == pytest.approx(
            (0 + 5e6 + 2e6 + 0.05e6) / 4)

    def test_all_disconnected(self):
        stats = unused_bandwidth_stats(np.array([np.nan, np.nan]), 10e6)
        assert stats.connected_fraction == 0.0
        assert np.isnan(stats.mean_unused_bps)

    def test_validation(self):
        with pytest.raises(ValueError):
            unused_bandwidth_stats(np.array([1.0]), 0.0)


class TestCoverage:
    def test_shapes_and_ranges(self, small_constellation):
        from repro.analysis.coverage import coverage_by_latitude
        results = coverage_by_latitude(small_constellation, 10.0,
                                       latitudes_deg=[0, 45, 90],
                                       num_longitudes=6,
                                       sample_times_s=(0.0, 60.0))
        assert [r.latitude_deg for r in results] == [0.0, 45.0, 90.0]
        for r in results:
            assert 0.0 <= r.covered_fraction <= 1.0
            assert r.mean_visible >= 0.0

    def test_53deg_shell_misses_pole(self, small_constellation):
        from repro.analysis.coverage import coverage_by_latitude
        results = coverage_by_latitude(small_constellation, 30.0,
                                       latitudes_deg=[0, 90],
                                       num_longitudes=8)
        equator, pole = results
        assert equator.covered_fraction > 0.0
        assert pole.covered_fraction == 0.0

    def test_validation(self, small_constellation):
        from repro.analysis.coverage import coverage_by_latitude
        with pytest.raises(ValueError):
            coverage_by_latitude(small_constellation, 10.0,
                                 num_longitudes=0)
        with pytest.raises(ValueError):
            coverage_by_latitude(small_constellation, 10.0,
                                 sample_times_s=())


class TestContacts:
    def test_windows_cover_visibility(self, small_constellation,
                                      small_stations):
        from repro.analysis.contacts import contact_windows
        windows = contact_windows(small_constellation, small_stations[0],
                                  10.0, duration_s=600.0, step_s=10.0)
        assert windows
        for w in windows:
            assert w.end_s > w.start_s
            assert 0.0 <= w.start_s < 600.0 + 10.0

    def test_boundary_windows_truncated(self, small_constellation,
                                        small_stations):
        from repro.analysis.contacts import contact_windows
        windows = contact_windows(small_constellation, small_stations[0],
                                  10.0, duration_s=600.0, step_s=10.0)
        for w in windows:
            if w.start_s == 0.0 or w.end_s >= 600.0:
                assert w.truncated

    def test_statistics(self):
        from repro.analysis.contacts import (ContactWindow,
                                             contact_statistics)
        windows = [
            ContactWindow(1, 0.0, 100.0, truncated=True),
            ContactWindow(2, 50.0, 250.0, truncated=False),
            ContactWindow(3, 100.0, 200.0, truncated=False),
        ]
        stats = contact_statistics(windows)
        assert stats["num_contacts"] == 2
        assert stats["median_duration_s"] == pytest.approx(150.0)
        assert stats["max_duration_s"] == pytest.approx(200.0)

    def test_statistics_empty(self):
        from repro.analysis.contacts import contact_statistics
        stats = contact_statistics([])
        assert stats["num_contacts"] == 0
        assert np.isnan(stats["median_duration_s"])

    def test_validation(self, small_constellation, small_stations):
        from repro.analysis.contacts import contact_windows
        with pytest.raises(ValueError):
            contact_windows(small_constellation, small_stations[0], 10.0,
                            duration_s=0.0)
