"""Tests for orbital shells and their +Grid neighborhoods."""

import math

import pytest

from repro.orbits.shell import SatelliteIndex, Shell


@pytest.fixture
def shell() -> Shell:
    return Shell(name="T", num_orbits=6, satellites_per_orbit=4,
                 altitude_m=600_000.0, inclination_deg=53.0)


class TestShellValidation:
    def test_valid(self, shell):
        assert shell.total_satellites == 24
        assert shell.altitude_km == 600.0

    def test_rejects_zero_orbits(self):
        with pytest.raises(ValueError):
            Shell("x", 0, 4, 600_000.0, 53.0)

    def test_rejects_zero_satellites(self):
        with pytest.raises(ValueError):
            Shell("x", 4, 0, 600_000.0, 53.0)

    def test_rejects_negative_altitude(self):
        with pytest.raises(ValueError):
            Shell("x", 4, 4, -1.0, 53.0)

    def test_rejects_bad_inclination(self):
        with pytest.raises(ValueError):
            Shell("x", 4, 4, 600_000.0, 181.0)

    def test_rejects_bad_phase_offset(self):
        with pytest.raises(ValueError):
            Shell("x", 4, 4, 600_000.0, 53.0, phase_offset_rel=1.0)


class TestIndexing:
    def test_flat_id_round_trip(self, shell):
        for sat_id in range(shell.total_satellites):
            index = shell.satellite_index(sat_id)
            assert shell.satellite_id(index) == sat_id

    def test_flat_id_layout(self, shell):
        assert shell.satellite_id(SatelliteIndex(0, 0)) == 0
        assert shell.satellite_id(SatelliteIndex(1, 0)) == 4
        assert shell.satellite_id(SatelliteIndex(5, 3)) == 23

    def test_out_of_range_rejected(self, shell):
        with pytest.raises(ValueError):
            shell.satellite_id(SatelliteIndex(6, 0))
        with pytest.raises(ValueError):
            shell.satellite_id(SatelliteIndex(0, 4))
        with pytest.raises(ValueError):
            shell.satellite_index(24)

    def test_iter_order(self, shell):
        indices = list(shell.iter_indices())
        assert len(indices) == 24
        assert indices[0] == SatelliteIndex(0, 0)
        assert indices[4] == SatelliteIndex(1, 0)


class TestElements:
    def test_raan_uniformly_spread(self, shell):
        raans = [shell.elements_for(SatelliteIndex(o, 0)).raan_rad
                 for o in range(shell.num_orbits)]
        spacing = 2 * math.pi / shell.num_orbits
        for i, raan in enumerate(raans):
            assert raan == pytest.approx(i * spacing)

    def test_in_orbit_uniform_spacing(self, shell):
        anomalies = [
            shell.elements_for(SatelliteIndex(0, p)).mean_anomaly_rad
            for p in range(shell.satellites_per_orbit)
        ]
        spacing = 2 * math.pi / shell.satellites_per_orbit
        for i, anomaly in enumerate(anomalies):
            assert anomaly == pytest.approx(i * spacing)

    def test_all_same_altitude_and_inclination(self, shell):
        for el in shell.all_elements():
            assert el.inclination_rad == pytest.approx(math.radians(53.0))
            assert el.eccentricity == 0.0

    def test_phase_offset_shifts_adjacent_planes(self):
        shell = Shell("p", 4, 4, 600_000.0, 53.0, phase_offset_rel=0.5)
        a = shell.elements_for(SatelliteIndex(0, 0)).mean_anomaly_rad
        b = shell.elements_for(SatelliteIndex(1, 0)).mean_anomaly_rad
        slot = 2 * math.pi / 4
        assert b - a == pytest.approx(0.5 * slot)

    def test_all_elements_count(self, shell):
        assert len(shell.all_elements()) == shell.total_satellites


class TestGridNeighbors:
    def test_four_distinct_neighbors(self, shell):
        neighbors = shell.grid_neighbors(SatelliteIndex(2, 2))
        assert len(set(neighbors)) == 4

    def test_neighbor_identity(self, shell):
        prev_o, next_o, prev_p, next_p = shell.grid_neighbors(
            SatelliteIndex(2, 2))
        assert prev_o == SatelliteIndex(2, 1)
        assert next_o == SatelliteIndex(2, 3)
        assert prev_p == SatelliteIndex(1, 2)
        assert next_p == SatelliteIndex(3, 2)

    def test_wraparound(self, shell):
        prev_o, next_o, prev_p, next_p = shell.grid_neighbors(
            SatelliteIndex(0, 0))
        assert prev_o == SatelliteIndex(0, 3)
        assert prev_p == SatelliteIndex(5, 0)

    def test_neighborhood_symmetric(self, shell):
        """If B is A's neighbor then A is B's neighbor."""
        for index in shell.iter_indices():
            for neighbor in shell.grid_neighbors(index):
                assert index in shell.grid_neighbors(neighbor)
