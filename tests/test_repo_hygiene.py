"""Repository hygiene: examples compile, benchmarks compile, docs exist."""

import py_compile
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _python_files(directory: str):
    return sorted((REPO_ROOT / directory).glob("*.py"))


class TestExamplesCompile:
    @pytest.mark.parametrize("path", _python_files("examples"),
                             ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_at_least_three_examples(self):
        assert len(_python_files("examples")) >= 3

    def test_examples_have_docstrings_and_main(self):
        for path in _python_files("examples"):
            source = path.read_text()
            assert source.lstrip().startswith(
                ("#!/usr/bin/env python3", '"""')), path.name
            assert '__main__' in source, path.name


class TestBenchmarksCompile:
    @pytest.mark.parametrize("path", _python_files("benchmarks"),
                             ids=lambda p: p.name)
    def test_benchmark_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_every_paper_figure_has_a_benchmark(self):
        names = {p.name for p in _python_files("benchmarks")}
        expected = {
            "test_table1_shells.py", "test_fig2_scalability.py",
            "test_fig3_rtt_fluctuations.py", "test_fig4_cwnd.py",
            "test_fig5_newreno_vegas.py", "test_fig6_rtt_vs_geodesic.py",
            "test_fig7_rtt_variation.py", "test_fig8_path_changes.py",
            "test_fig9_timestep.py", "test_fig10_unused_bandwidth.py",
            "test_fig11_trajectories.py", "test_fig12_ground_view.py",
            "test_fig13_path_evolution.py", "test_fig14_15_utilization.py",
            "test_fig16_17_bent_pipe_paths.py",
            "test_fig18_bent_pipe_rtt.py", "test_fig19_bent_pipe_tcp.py",
        }
        missing = expected - names
        assert not missing, f"figures without benchmarks: {missing}"


class TestDocumentation:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / name
            assert path.exists(), name
            assert len(path.read_text()) > 1000, name

    def test_design_covers_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for token in ["Table 1", "Fig. 2", "Fig. 9", "Fig. 10",
                      "Fig. 16/17", "Fig. 19"]:
            assert token in design, token

    def test_public_modules_have_docstrings(self):
        import importlib
        import repro
        for module_name in [
            "repro.geo", "repro.orbits", "repro.constellations",
            "repro.ground", "repro.topology", "repro.routing",
            "repro.simulation", "repro.transport", "repro.fluid",
            "repro.analysis", "repro.viz", "repro.core",
        ]:
            module = importlib.import_module(module_name)
            assert module.__doc__, module_name
