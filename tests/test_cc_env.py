"""Environment contract tests (repro.cc.env) and learned-controller
checkpoint/restore parity through the live service."""

import json
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.env import EnvSpec, ExternalController, RateControlEnv
from repro.constellations.builder import Constellation
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.orbits.shell import Shell
from repro.service import LiveSimulationService
from repro.service.driver import ServiceError
from repro.sweep.spec import NetworkSpec
from repro.topology.network import LeoNetwork
from repro.traffic import FlowRequest, WorkloadSchedule

pytestmark = pytest.mark.cc

_SITES = [
    ("Quito", 0.0, -78.5),
    ("Nairobi", -1.3, 36.8),
    ("Singapore", 1.35, 103.8),
    ("Honolulu", 21.3, -157.9),
    ("Sydney", -33.9, 151.2),
    ("Madrid", 40.4, -3.7),
]


def _network_spec(workload=None) -> NetworkSpec:
    # 8x8 is the smallest lab shell where every site pair has a route.
    shell = Shell(name="X1", num_orbits=8, satellites_per_orbit=8,
                  altitude_m=600_000.0, inclination_deg=53.0)
    stations = [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(_SITES)
    ]
    network = LeoNetwork(Constellation([shell]), stations,
                         min_elevation_deg=10.0)
    spec = NetworkSpec.from_network(network)
    if workload is not None:
        spec = spec.with_workload(workload)
    return spec


def _env_spec(**overrides) -> EnvSpec:
    defaults = dict(network=_network_spec(), src_gid=0, dst_gid=3,
                    decision_interval_s=0.2, horizon_s=2.0)
    defaults.update(overrides)
    return EnvSpec(**defaults)


def _stream(spec: EnvSpec, seed: int, actions) -> np.ndarray:
    observations = RateControlEnv(spec, seed=seed).rollout(list(actions))
    return np.stack([obs.as_vector() for obs in observations])


class TestEnvBasics:
    def test_reset_returns_initial_observation(self):
        env = RateControlEnv(_env_spec())
        obs = env.reset()
        assert obs.time_s == 0.0
        assert obs.cwnd_packets == 10.0
        assert not obs.done

    def test_step_before_reset_rejected(self):
        with pytest.raises(RuntimeError, match="reset"):
            RateControlEnv(_env_spec()).step(1.0)

    def test_bad_actions_rejected(self):
        env = RateControlEnv(_env_spec())
        env.reset()
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="positive finite"):
                env.step(bad)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="action_mode"):
            _env_spec(action_mode="teleport")
        with pytest.raises(ValueError, match="decision interval"):
            _env_spec(decision_interval_s=0.0)

    def test_cwnd_action_applies_and_clamps(self):
        spec = _env_spec(max_cwnd=25.0)
        env = RateControlEnv(spec)
        env.reset()
        obs, _, _, _ = env.step(2.0)
        assert obs.cwnd_packets == 20.0
        obs, _, _, _ = env.step(100.0)
        assert obs.cwnd_packets == 25.0  # clamped
        env.flow.in_recovery = False
        obs, _, _, _ = env.step(1e-9)
        assert obs.cwnd_packets == spec.min_cwnd

    def test_delivery_observed(self):
        env = RateControlEnv(_env_spec(horizon_s=4.0))
        observations = env.rollout([1.0] * 20)
        delivered = sum(obs.acked_packets for obs in observations)
        assert delivered > 0
        assert any(np.isfinite(obs.rtt_mean_s) for obs in observations)

    def test_done_at_horizon(self):
        env = RateControlEnv(_env_spec(horizon_s=1.0))
        observations = env.rollout([1.0] * 50)
        assert observations[-1].done
        assert observations[-1].time_s <= 1.0 + 1e-9

    def test_done_on_completion(self):
        env = RateControlEnv(_env_spec(max_packets=20, horizon_s=10.0))
        observations = env.rollout([1.0] * 50)
        assert observations[-1].done
        assert env.flow.completed_at_s is not None

    def test_pacing_mode(self):
        env = RateControlEnv(_env_spec(
            action_mode="pacing", initial_pacing_rate_bps=2e6,
            horizon_s=2.0))
        env.reset()
        assert isinstance(env.controller, ExternalController)
        assert env.controller.paced
        env.step(2.0)
        assert env.controller.pacing_rate_bps == 4e6

    def test_reward_is_finite(self):
        env = RateControlEnv(_env_spec(horizon_s=2.0))
        env.reset()
        for _ in range(5):
            _, reward, done, _ = env.step(1.5)
            assert np.isfinite(reward)
            if done:
                break


class TestEnvDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           actions=st.lists(
               st.floats(min_value=0.5, max_value=4.0,
                         allow_nan=False, allow_infinity=False),
               min_size=1, max_size=6))
    def test_same_spec_seed_actions_same_observations(self, seed, actions):
        """The env contract: rollouts are pure in (spec, seed, actions)."""
        spec = _env_spec()
        first = _stream(spec, seed, actions)
        second = _stream(spec, seed, actions)
        np.testing.assert_array_equal(first, second)

    def test_background_workload_deterministic(self):
        rng = random.Random(5)
        requests = [
            FlowRequest(t_start_s=rng.uniform(0.0, 1.0),
                        src_gid=1, dst_gid=4,
                        size_bytes=rng.randint(20_000, 60_000))
            for _ in range(4)
        ]
        spec = _env_spec(network=_network_spec(
            WorkloadSchedule(requests, seed=5)), horizon_s=2.0)
        actions = [1.25, 0.8, 2.0, 1.0, 1.5]
        np.testing.assert_array_equal(_stream(spec, 3, actions),
                                      _stream(spec, 3, actions))


def _service_spec() -> NetworkSpec:
    rng = random.Random(17)
    requests = []
    for _ in range(16):
        src, dst = rng.sample(range(len(_SITES)), 2)
        requests.append(FlowRequest(t_start_s=rng.uniform(0.0, 6.0),
                                    src_gid=src, dst_gid=dst,
                                    size_bytes=rng.randint(20_000, 60_000)))
    return _network_spec(WorkloadSchedule(requests, seed=17))


def _parity_form(service: LiveSimulationService) -> str:
    return json.dumps(service.report().as_dict(deterministic=True),
                      sort_keys=True)


@pytest.mark.service
class TestLearnedControllerService:
    def test_controller_requires_packet_engine(self):
        with pytest.raises(ServiceError, match="packet"):
            LiveSimulationService(_service_spec(), engine="fluid",
                                  controller="bandit")

    def test_checkpoint_restore_continue_parity(self, tmp_path):
        """A mid-run learned controller (shared bandit brain included)
        survives checkpoint -> restore -> continue bit-identically."""
        horizon = 10.0
        reference = LiveSimulationService(
            _service_spec(), horizon_s=horizon, epoch_s=1.0,
            controller="bandit")
        reference.advance_to(horizon)

        service = LiveSimulationService(
            _service_spec(), horizon_s=horizon, epoch_s=1.0,
            controller="bandit")
        service.advance_to(5.0)
        path = str(tmp_path / "cc.ckpt")
        service.save(path)
        restored = LiveSimulationService.resume(path)
        restored.advance_to(horizon)

        assert _parity_form(restored) == _parity_form(reference)

    def test_per_controller_fct_rows(self):
        service = LiveSimulationService(
            _service_spec(), horizon_s=10.0, epoch_s=1.0,
            controller="bandit")
        service.advance_to(10.0)
        fct = service.report().as_dict()["fct"]
        assert set(fct["by_controller"]) == {"bandit"}
        row = fct["by_controller"]["bandit"]
        assert row["flows_completed"] > 0
        assert row["fct_p50_s"] <= row["fct_p99_s"]
