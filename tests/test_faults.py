"""Tests for the deterministic fault-injection subsystem (repro.faults).

Covers the schedule semantics, per-layer wiring (topology snapshots,
packet devices, fluid capacities, sweep spec, viz, CLI), the weather
unification, and the determinism contract: identical seeds produce
byte-identical reports, serially and across sweep workers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.faults.injector import LinkFaultInjector
from repro.ground.weather import RainEvent, WeatherModel
from repro.topology.network import LeoNetwork

pytestmark = pytest.mark.faults


# ----------------------------------------------------------------------
# Schedule semantics
# ----------------------------------------------------------------------

class TestFaultEvent:
    def test_active_interval_end_exclusive(self):
        event = FaultEvent.satellite_outage(3, 5.0, 10.0)
        assert not event.active_at(4.999)
        assert event.active_at(5.0)
        assert event.active_at(9.999)
        assert not event.active_at(10.0)

    def test_isl_pair_normalized_by_constructor(self):
        event = FaultEvent.isl_cut(7, 2, 0.0, 1.0)
        assert event.isl == (2, 7)

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            FaultEvent.satellite_outage(0, 5.0, 5.0)

    def test_rejects_missing_target(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.SATELLITE_OUTAGE, 0.0, 1.0)

    def test_rejects_multiple_targets(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.PACKET_LOSS, 0.0, 1.0, isl=(0, 1), gid=2,
                       rate=0.5)

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            FaultEvent.packet_loss(0.0, 1.0, rate=0.0, gid=0)
        with pytest.raises(ValueError):
            FaultEvent.packet_loss(0.0, 1.0, rate=1.5, gid=0)

    def test_dict_round_trip(self):
        events = [
            FaultEvent.satellite_outage(3, 5.0, 10.0),
            FaultEvent.isl_cut(1, 2, 0.0, 4.0),
            FaultEvent.gsl_cut(2, 1.0, 4.0),
            FaultEvent.gsl_attenuation(0, 2.0, 9.0, 25.0),
            FaultEvent.packet_loss(2.0, 8.0, 0.25, isl=(3, 4)),
            FaultEvent.packet_corruption(1.0, 2.0, 0.01, gid=5),
        ]
        for event in events:
            clone = FaultEvent.from_dict(
                json.loads(json.dumps(event.as_dict())))
            assert clone == event


class TestFaultSchedule:
    def _schedule(self):
        return FaultSchedule([
            FaultEvent.satellite_outage(3, 5.0, 10.0),
            FaultEvent.isl_cut(1, 2, 0.0, 4.0),
            FaultEvent.gsl_cut(2, 1.0, 4.0),
            FaultEvent.gsl_attenuation(0, 2.0, 9.0, 25.0),
            FaultEvent.packet_loss(2.0, 8.0, 0.25, isl=(3, 4)),
            FaultEvent.packet_loss(2.0, 8.0, 0.5, gid=0),
        ], seed=7)

    def test_time_queries(self):
        schedule = self._schedule()
        assert schedule.failed_satellites_at(6.0) == {3}
        assert schedule.failed_satellites_at(10.0) == frozenset()
        assert schedule.cut_isls_at(1.0) == {(1, 2)}
        assert schedule.cut_isls_at(4.0) == frozenset()
        assert schedule.cut_gids_at(2.0) == {2}
        assert schedule.elevation_penalty_deg(0, 3.0) == 25.0
        assert schedule.elevation_penalty_deg(0, 9.5) == 0.0

    def test_events_stored_sorted_regardless_of_input_order(self):
        schedule = self._schedule()
        shuffled = FaultSchedule(list(reversed(schedule.events)), seed=7)
        assert shuffled.events == schedule.events
        assert shuffled == schedule

    def test_json_round_trip(self, tmp_path):
        schedule = self._schedule()
        path = str(tmp_path / "faults.json")
        schedule.to_json(path)
        assert FaultSchedule.from_json(path) == schedule

    def test_from_dict_rejects_payload_without_events(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_dict({"bad": True})

    def test_merged_keeps_seed_and_unions_events(self):
        a = FaultSchedule([FaultEvent.gsl_cut(0, 0.0, 1.0)], seed=3)
        b = FaultSchedule([FaultEvent.gsl_cut(1, 0.0, 1.0)], seed=9)
        merged = a.merged(b)
        assert merged.seed == 3
        assert len(merged) == 2

    def test_combined_rate_is_product_form(self):
        schedule = self._schedule()
        events = (FaultEvent.packet_loss(0.0, 1.0, 0.5, gid=0),
                  FaultEvent.packet_loss(0.0, 1.0, 0.2, gid=0))
        assert schedule.combined_rate(events, 0.5) == pytest.approx(
            1.0 - 0.5 * 0.8)

    def test_capacity_factor(self):
        schedule = self._schedule()
        num_sats = 10
        # Cut ISL and outaged satellite's links: zero capacity.
        assert schedule.capacity_factor((1, 2), num_sats, 1.0) == 0.0
        assert schedule.capacity_factor((2, 1), num_sats, 1.0) == 0.0
        assert schedule.capacity_factor((3, 4), num_sats, 6.0) == 0.0
        assert schedule.capacity_factor(("gsl", 3), num_sats, 6.0) == 0.0
        # Cut station, lossy station uplink, lossy ISL.
        assert schedule.capacity_factor(("gsl", 12), num_sats, 2.0) == 0.0
        assert schedule.capacity_factor(
            ("gsl", 10), num_sats, 4.0) == pytest.approx(0.5)
        assert schedule.capacity_factor(
            (3, 4), num_sats, 2.0) == pytest.approx(0.75)
        # Healthy link, and everything after recovery.
        assert schedule.capacity_factor((5, 6), num_sats, 1.0) == 1.0
        assert schedule.capacity_factor((1, 2), num_sats, 11.0) == 1.0

    def test_synthetic_is_deterministic_and_covers_kinds(self):
        kwargs = dict(num_satellites=200, num_stations=50,
                      duration_s=120.0, seed=11,
                      satellite_outage_probability=0.2,
                      gsl_cut_probability=0.3, loss_probability=0.3)
        a = FaultSchedule.synthetic(**kwargs)
        b = FaultSchedule.synthetic(**kwargs)
        assert a == b
        kinds = {event.kind for event in a}
        assert FaultKind.SATELLITE_OUTAGE in kinds
        assert FaultKind.GSL_CUT in kinds
        assert FaultKind.PACKET_LOSS in kinds
        assert FaultSchedule.synthetic(
            num_satellites=200, num_stations=50, duration_s=120.0,
            seed=12, satellite_outage_probability=0.2,
            gsl_cut_probability=0.3, loss_probability=0.3) != a

    def test_synthetic_validates_probabilities(self):
        with pytest.raises(ValueError):
            FaultSchedule.synthetic(10, 5, 60.0,
                                    satellite_outage_probability=1.5)


class TestWeatherUnification:
    def test_from_weather_matches_penalty_sums(self):
        weather = WeatherModel.synthetic(8, 120.0, seed=4,
                                         storm_probability=0.9)
        schedule = FaultSchedule.from_weather(weather)
        assert schedule.num_events == weather.num_events
        for gid in range(8):
            for t in np.linspace(0.0, 121.0, 50):
                assert schedule.elevation_penalty_deg(gid, t) == \
                    pytest.approx(weather.penalty_deg(gid, t))

    def test_weather_network_snapshots_equal_fault_network_snapshots(
            self, small_constellation, small_stations):
        weather = WeatherModel([
            RainEvent(gid=0, start_s=2.0, end_s=8.0,
                      elevation_penalty_deg=40.0),
            RainEvent(gid=3, start_s=0.0, end_s=5.0,
                      elevation_penalty_deg=90.0),
        ])
        via_weather = LeoNetwork(small_constellation, small_stations,
                                 min_elevation_deg=10.0, weather=weather)
        via_faults = LeoNetwork(small_constellation, small_stations,
                                min_elevation_deg=10.0,
                                faults=FaultSchedule.from_weather(weather))
        for t in (0.0, 3.0, 6.0, 9.0):
            a, b = via_weather.snapshot(t), via_faults.snapshot(t)
            for gid in range(len(small_stations)):
                assert np.array_equal(a.gsl_edges[gid].satellite_ids,
                                      b.gsl_edges[gid].satellite_ids)


# ----------------------------------------------------------------------
# The per-device Bernoulli injector
# ----------------------------------------------------------------------

class TestLinkFaultInjector:
    def _events(self, rate=0.5):
        return [FaultEvent.packet_loss(10.0, 20.0, rate, isl=(3, 4))]

    def test_no_drops_outside_window(self):
        injector = LinkFaultInjector("isl-3-4", self._events(rate=1.0))
        assert all(injector.drop_reason(t) is None
                   for t in (0.0, 9.99, 20.0, 100.0))

    def test_rate_one_always_drops_inside_window(self):
        injector = LinkFaultInjector("isl-3-4", self._events(rate=1.0))
        assert all(injector.drop_reason(15.0) == "loss" for _ in range(20))

    def test_same_seed_same_stream(self):
        a = LinkFaultInjector("isl-3-4", self._events(), seed=5)
        b = LinkFaultInjector("isl-3-4", self._events(), seed=5)
        assert [a.drop_reason(15.0) for _ in range(200)] == \
            [b.drop_reason(15.0) for _ in range(200)]

    def test_streams_differ_across_devices_and_seeds(self):
        a = [LinkFaultInjector("isl-3-4", self._events(),
                               seed=5).drop_reason(15.0)
             for _ in range(1)]
        outcomes_by_name = [
            [LinkFaultInjector(name, self._events(), seed=5).drop_reason(15.0)
             for _ in range(64)]
            for name in ("isl-3-4", "isl-4-3")
        ]
        assert outcomes_by_name[0] != outcomes_by_name[1]
        del a

    def test_stream_not_consumed_while_inactive(self):
        """Draws only happen inside fault windows, so adding pre-window
        traffic cannot perturb in-window outcomes."""
        a = LinkFaultInjector("isl-3-4", self._events(), seed=5)
        b = LinkFaultInjector("isl-3-4", self._events(), seed=5)
        for _ in range(100):
            a.drop_reason(1.0)  # outside [10, 20): no RNG consumption
        assert [a.drop_reason(15.0) for _ in range(50)] == \
            [b.drop_reason(15.0) for _ in range(50)]

    def test_corruption_reported_distinctly(self):
        injector = LinkFaultInjector("gsl-100", [
            FaultEvent.packet_corruption(0.0, 10.0, 1.0, gid=0)])
        assert injector.drop_reason(5.0) == "corruption"

    def test_non_stochastic_events_filtered(self):
        injector = LinkFaultInjector("isl-0-1", [
            FaultEvent.isl_cut(0, 1, 0.0, 10.0)])
        assert not injector.has_events


# ----------------------------------------------------------------------
# Topology integration: snapshots exclude faulted elements
# ----------------------------------------------------------------------

class TestSnapshotFaultMasking:
    def test_outage_removes_isls_and_gsls_then_recovers(
            self, small_constellation, small_stations):
        faults = FaultSchedule([FaultEvent.satellite_outage(5, 3.0, 7.0)])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        baseline = LeoNetwork(small_constellation, small_stations,
                              min_elevation_deg=10.0)
        during = network.snapshot(5.0)
        assert all(5 not in (a, b) for a, b in during.isl_pairs)
        assert 5 not in {int(s) for e in during.gsl_edges.values()
                         for s in e.satellite_ids}
        for t in (0.0, 7.0, 9.0):  # before, at recovery, after
            assert np.array_equal(network.snapshot(t).isl_pairs,
                                  baseline.snapshot(t).isl_pairs)

    def test_isl_cut_removes_one_link(self, small_constellation,
                                      small_stations):
        baseline = LeoNetwork(small_constellation, small_stations,
                              min_elevation_deg=10.0)
        pair = tuple(int(x) for x in baseline.isl_pairs[0])
        faults = FaultSchedule([FaultEvent.isl_cut(*pair, 0.0, 2.0)])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        cut = {tuple(p) for p in network.snapshot(1.0).isl_pairs}
        full = {tuple(p) for p in baseline.snapshot(1.0).isl_pairs}
        assert full - cut == {pair}
        assert {tuple(p) for p in network.snapshot(2.0).isl_pairs} == full

    def test_gsl_cut_disconnects_station(self, small_constellation,
                                         small_stations):
        faults = FaultSchedule([FaultEvent.gsl_cut(2, 1.0, 4.0)])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        assert network.snapshot(0.0).gsl_edges[2].is_connected
        assert not network.snapshot(2.0).gsl_edges[2].is_connected
        assert network.snapshot(4.0).gsl_edges[2].is_connected

    def test_attenuation_shrinks_visible_set(self, small_constellation,
                                             small_stations):
        faults = FaultSchedule([
            FaultEvent.gsl_attenuation(0, 1.0, 4.0, 35.0)])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        before = len(network.snapshot(0.9).gsl_edges[0].satellite_ids)
        during = len(network.snapshot(1.1).gsl_edges[0].satellite_ids)
        assert during < before

    def test_out_of_range_targets_rejected(self, small_constellation,
                                           small_stations):
        with pytest.raises(ValueError):
            LeoNetwork(small_constellation, small_stations,
                       min_elevation_deg=10.0,
                       faults=FaultSchedule([
                           FaultEvent.satellite_outage(999, 0.0, 1.0)]))
        with pytest.raises(ValueError):
            LeoNetwork(small_constellation, small_stations,
                       min_elevation_deg=10.0,
                       faults=FaultSchedule([
                           FaultEvent.gsl_cut(99, 0.0, 1.0)]))


class TestMidRunRerouteAndRecovery:
    def test_outage_reroutes_then_recovery_restores_path(
            self, small_constellation, small_stations):
        """The acceptance scenario: a mid-run satellite outage of an
        on-path satellite visibly reroutes the pair at the next
        forwarding tick, and recovery restores the original path."""
        from repro.topology.dynamic_state import DynamicState
        baseline = LeoNetwork(small_constellation, small_stations,
                              min_elevation_deg=10.0)
        pair = (0, 3)
        base_tl = DynamicState(baseline, [pair], duration_s=10.0,
                               step_s=1.0).compute()[pair]
        # Fail a satellite that is on the pair's path at t in [3, 7).
        victims = [n for n in base_tl.paths[3]
                   if n < baseline.num_satellites]
        victim = victims[len(victims) // 2]
        faults = FaultSchedule([
            FaultEvent.satellite_outage(victim, 3.0, 7.0)])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        fault_tl = DynamicState(network, [pair], duration_s=10.0,
                                step_s=1.0).compute()[pair]
        # Unaffected before the outage...
        assert fault_tl.paths[:3] == base_tl.paths[:3]
        # ...rerouted (victim-free) while it lasts...
        for t_index in range(3, 7):
            path = fault_tl.paths[t_index]
            if path is not None:
                assert victim not in path
            assert path != base_tl.paths[t_index] or \
                victim not in (base_tl.paths[t_index] or ())
        assert fault_tl.paths[3] != base_tl.paths[3]
        # ...with a visible RTT/hop change at the outage tick...
        changed = (fault_tl.hop_counts()[3] != base_tl.hop_counts()[3]
                   or fault_tl.rtts_s[3] != base_tl.rtts_s[3])
        assert changed
        # ...and recovery restores the original (baseline) path.
        assert fault_tl.paths[7:] == base_tl.paths[7:]
        assert np.allclose(fault_tl.distances_m[7:],
                           base_tl.distances_m[7:])


# ----------------------------------------------------------------------
# Packet simulator integration: fault drops, partition, metrics
# ----------------------------------------------------------------------

def _lossy_network(constellation, stations, rate=0.5, seed=9):
    faults = FaultSchedule([
        FaultEvent.packet_loss(1.0, 4.0, rate, gid=0)], seed=seed)
    return LeoNetwork(constellation, stations, min_elevation_deg=10.0,
                      faults=faults)


class TestPacketFaultDrops:
    def test_drops_counted_under_fault_reason(self, small_constellation,
                                              small_stations):
        from repro.obs.trace import PKT_DROP, RingBufferTracer
        from repro.simulation.simulator import PacketSimulator
        from repro.transport.ping import PingSession
        network = _lossy_network(small_constellation, small_stations)
        tracer = RingBufferTracer()
        sim = PacketSimulator(network, tracer=tracer)
        PingSession(0, 3, interval_s=0.01).install(sim)
        sim.run(6.0)
        stats = sim.stats
        assert stats.packets_dropped_fault > 0
        assert stats.packets_dropped >= stats.packets_dropped_fault
        # Queue drops and fault drops are partitioned, not conflated.
        drops = [e for e in tracer.events_of(PKT_DROP)
                 if e.reason == "fault"]
        assert len(drops) == stats.packets_dropped_fault
        # All fault drops happened inside the schedule window, on the
        # faulted device.
        assert all(1.0 <= e.time_s < 4.0 for e in drops)
        assert all(e.link == f"gsl-{network.gs_node_id(0)}" for e in drops)

    def test_report_partitions_drop_reasons(self, small_constellation,
                                            small_stations):
        from repro.simulation.simulator import PacketSimulator
        from repro.transport.ping import PingSession
        network = _lossy_network(small_constellation, small_stations)
        sim = PacketSimulator(network)
        PingSession(0, 3, interval_s=0.01).install(sim)
        sim.run(6.0)
        summary = sim.report().as_dict()["summary"]
        assert summary["packets_dropped_fault"] > 0
        partition = (summary["packets_dropped_no_route"]
                     + summary["packets_dropped_queue"]
                     + summary["packets_dropped_ttl"]
                     + summary["packets_dropped_no_handler"]
                     + summary["packets_dropped_fault"])
        assert summary["packets_dropped"] == partition

    def test_no_faults_no_behavior_change(self, small_constellation,
                                          small_stations):
        """An empty schedule is inert: identical results to no schedule."""
        from repro.simulation.simulator import PacketSimulator
        from repro.transport.ping import PingSession
        results = []
        for faults in (None, FaultSchedule()):
            network = LeoNetwork(small_constellation, small_stations,
                                 min_elevation_deg=10.0, faults=faults)
            sim = PacketSimulator(network)
            PingSession(0, 3, interval_s=0.01).install(sim)
            sim.run(3.0)
            results.append(json.dumps(
                sim.report().as_dict(deterministic=True), sort_keys=True))
        assert results[0] == results[1]

    def test_probe_records_faults_series(self, small_constellation,
                                         small_stations):
        from repro.obs import MetricsRegistry
        from repro.simulation.simulator import PacketSimulator
        from repro.transport.ping import PingSession
        network = _lossy_network(small_constellation, small_stations)
        sim = PacketSimulator(network)
        registry = MetricsRegistry()
        sim.attach_probe(registry=registry, interval_s=1.0)
        PingSession(0, 3, interval_s=0.01).install(sim)
        sim.run(6.0)
        active = registry.series_logs["faults.active_events"]
        dropped = registry.series_logs["faults.packets_dropped"]
        assert max(active.values) == 1.0  # window [1, 4) spans samples
        assert min(active.values) == 0.0
        assert dropped.values[-1] == float(sim.stats.packets_dropped_fault)


# ----------------------------------------------------------------------
# Determinism regression (the tentpole contract)
# ----------------------------------------------------------------------

class TestDeterminism:
    def _run_report_json(self, constellation, stations):
        from repro.simulation.simulator import PacketSimulator
        from repro.transport.ping import PingSession
        network = _lossy_network(constellation, stations, seed=21)
        sim = PacketSimulator(network)
        PingSession(0, 3, interval_s=0.01).install(sim)
        PingSession(1, 4, interval_s=0.02).install(sim)
        sim.run(6.0)
        return json.dumps(sim.report().as_dict(deterministic=True),
                          sort_keys=True)

    def test_identical_seed_byte_identical_reports(
            self, small_constellation, small_stations):
        first = self._run_report_json(small_constellation, small_stations)
        second = self._run_report_json(small_constellation, small_stations)
        assert first == second

    def test_deterministic_dict_strips_wall_clock_keys(
            self, small_constellation, small_stations):
        from repro.obs.report import WALL_CLOCK_KEYS
        from repro.simulation.simulator import PacketSimulator
        from repro.transport.ping import PingSession
        network = _lossy_network(small_constellation, small_stations)
        sim = PacketSimulator(network)
        PingSession(0, 3, interval_s=0.01).install(sim)
        sim.run(2.0)
        report = sim.report()
        full = report.as_dict()["summary"]
        deterministic = report.as_dict(deterministic=True)["summary"]
        assert WALL_CLOCK_KEYS & set(full)
        assert not WALL_CLOCK_KEYS & set(deterministic)
        # Everything else is untouched.
        for key, value in deterministic.items():
            assert full[key] == value

    def test_sweep_parallel_equals_serial_under_faults(
            self, small_constellation, small_stations):
        from repro.topology.dynamic_state import DynamicState
        faults = FaultSchedule([
            FaultEvent.satellite_outage(5, 3.0, 7.0),
            FaultEvent.gsl_cut(2, 2.0, 5.0),
            FaultEvent.isl_cut(0, 1, 0.0, 9.0),
        ], seed=13)
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        pairs = [(0, 3), (1, 4), (2, 5)]
        serial = DynamicState(network, pairs, duration_s=10.0,
                              step_s=0.5).compute(workers=1)
        parallel = DynamicState(network, pairs, duration_s=10.0,
                                step_s=0.5).compute(workers=4)
        for pair in pairs:
            assert np.array_equal(serial[pair].distances_m,
                                  parallel[pair].distances_m)
            assert serial[pair].paths == parallel[pair].paths


# ----------------------------------------------------------------------
# Fluid engines: faulted links are zero-capacity
# ----------------------------------------------------------------------

class TestFluidFaults:
    def _network(self, constellation, stations):
        faults = FaultSchedule([FaultEvent.gsl_cut(0, 3.0, 7.0)])
        return LeoNetwork(constellation, stations,
                          min_elevation_deg=10.0, faults=faults)

    def test_maxmin_zeroes_cut_window(self, small_constellation,
                                      small_stations):
        from repro.fluid.engine import FluidFlow, FluidSimulation
        network = self._network(small_constellation, small_stations)
        result = FluidSimulation(network, [FluidFlow(0, 3)]).run(
            10.0, step_s=1.0)
        rates = result.flow_rates_bps[:, 0]
        assert (rates[3:7] == 0.0).all()
        assert rates[0] > 0.0 and rates[8] > 0.0

    def test_aimd_zeroes_cut_window(self, small_constellation,
                                    small_stations):
        from repro.fluid.aimd import AimdFluidSimulation
        from repro.fluid.engine import FluidFlow
        network = self._network(small_constellation, small_stations)
        result = AimdFluidSimulation(network, [FluidFlow(0, 3)]).run(
            10.0, step_s=1.0)
        rates = result.flow_rates_bps[:, 0]
        assert (rates[3:7] == 0.0).all()
        assert rates[0] > 0.0 and rates[8] > 0.0

    def test_maxmin_scales_lossy_link_capacity(self, small_constellation,
                                               small_stations):
        from repro.fluid.engine import FluidFlow, FluidSimulation
        faults = FaultSchedule([
            FaultEvent.packet_loss(0.0, 100.0, 0.5, gid=0)])
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        clean = LeoNetwork(small_constellation, small_stations,
                           min_elevation_deg=10.0)
        lossy_rate = FluidSimulation(network, [FluidFlow(0, 3)]).run(
            2.0, step_s=1.0).flow_rates_bps[0, 0]
        clean_rate = FluidSimulation(clean, [FluidFlow(0, 3)]).run(
            2.0, step_s=1.0).flow_rates_bps[0, 0]
        assert lossy_rate == pytest.approx(clean_rate * 0.5)


# ----------------------------------------------------------------------
# Viz: the utilization map marks faulted links
# ----------------------------------------------------------------------

class TestVizFaultMarking:
    def test_faulted_links_flagged_and_included(self, small_constellation,
                                                small_stations):
        from repro.viz.utilization_map import (hotspot_summary,
                                               utilization_map)
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0)
        cut_pair = tuple(int(x) for x in network.isl_pairs[0])
        outaged_sat = int(network.isl_pairs[-1][0])
        faults = FaultSchedule([
            FaultEvent.isl_cut(*cut_pair, 0.0, 10.0),
            FaultEvent.satellite_outage(outaged_sat, 0.0, 10.0),
        ])
        loads = {cut_pair: 0.0, (2, 3): 0.9}
        segments = utilization_map(small_constellation, loads, 5.0,
                                   faults=faults,
                                   isl_pairs=network.isl_pairs)
        by_pair = {(s.sat_a, s.sat_b): s for s in segments}
        # The cut link appears despite zero load, flagged.
        assert by_pair[cut_pair].faulted
        # Every ISL of the outaged satellite is flagged too.
        outage_links = [s for s in segments
                        if outaged_sat in (s.sat_a, s.sat_b)]
        assert outage_links and all(s.faulted for s in outage_links)
        # Loaded healthy links are not flagged.
        assert not by_pair[(2, 3)].faulted
        summary = hotspot_summary(segments)
        assert summary["num_faulted_isls"] == len(
            [s for s in segments if s.faulted])
        assert summary["num_used_isls"] == 1  # only (2, 3) carries load

    def test_no_faults_keeps_previous_shape(self, small_constellation):
        from repro.viz.utilization_map import utilization_map
        segments = utilization_map(small_constellation,
                                   {(2, 3): 0.5, (3, 2): 0.25}, 0.0)
        assert len(segments) == 1
        assert not segments[0].faulted
        assert segments[0].utilization == 0.5


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestFaultsCli:
    def test_faults_generator_writes_loadable_schedule(self, tmp_path,
                                                       capsys):
        from repro.cli import main
        path = str(tmp_path / "faults.json")
        code = main(["faults", "K1", "-o", path, "--seed", "7",
                     "--duration", "120", "--sat-outage-prob", "0.1"])
        assert code == 0
        schedule = FaultSchedule.from_json(path)
        assert schedule.seed == 7
        assert schedule.num_events > 0
        out = capsys.readouterr().out
        assert "fault events" in out

    def test_report_accepts_faults_flag(self, tmp_path, capsys):
        from repro.cli import main
        spec = str(tmp_path / "faults.json")
        FaultSchedule([FaultEvent.gsl_cut(0, 1.0, 3.0)],
                      seed=2).to_json(spec)
        out_path = str(tmp_path / "report.json")
        code = main(["report", "K1", "Manila", "Dalian",
                     "--engine", "maxmin", "--duration", "2",
                     "--faults", spec, "-o", out_path])
        assert code == 0
        payload = json.loads(open(out_path).read())
        assert payload["kind"] == "fluid.maxmin"
        assert "loaded fault schedule: 1 events" in capsys.readouterr().out
