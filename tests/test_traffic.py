"""Tests for the traffic subsystem (repro.traffic): gravity matrices,
stochastic flow churn, and flow-completion-time reporting."""

import json

import numpy as np
import pytest

from repro import random_permutation_pairs
from repro.fluid.aimd import AimdFluidSimulation
from repro.fluid.engine import FluidFlow, FluidSimulation
from repro.ground.cities import top_cities
from repro.traffic import (
    FCT_BUCKETS,
    FlowArrivalProcess,
    FlowRequest,
    TrafficMatrix,
    WorkloadSchedule,
    WorkloadSpawner,
)

pytestmark = pytest.mark.traffic


class TestTrafficMatrix:
    def test_gravity_shape_and_normalization(self):
        matrix = TrafficMatrix.gravity(count=20, total_offered_bps=5e8)
        assert matrix.num_stations == 20
        assert matrix.kind == "gravity"
        assert matrix.total_offered_bps == pytest.approx(5e8)
        assert np.diagonal(matrix.demand_bps).sum() == 0.0
        assert (matrix.demand_bps >= 0.0).all()

    def test_gravity_is_deterministic(self):
        first = TrafficMatrix.gravity(count=15, total_offered_bps=1e8)
        second = TrafficMatrix.gravity(count=15, total_offered_bps=1e8)
        assert first == second
        assert np.array_equal(first.demand_bps, second.demand_bps)

    def test_gravity_prefers_bigger_closer_cities(self):
        cities = top_cities(30)
        matrix = TrafficMatrix.gravity(cities=cities,
                                       total_offered_bps=1e9,
                                       distance_exponent=1.0)
        # Row sums follow population: the top city offers more than
        # the 30th.
        rows = matrix.demand_bps.sum(axis=1)
        assert rows[0] > rows[-1]

    def test_gravity_exponent_zero_is_pure_population(self):
        cities = top_cities(10)
        matrix = TrafficMatrix.gravity(cities=cities,
                                       total_offered_bps=1e6,
                                       distance_exponent=0.0)
        pops = np.array([float(c.population) for c in cities])
        expected = np.outer(pops, pops)
        np.fill_diagonal(expected, 0.0)
        expected *= 1e6 / expected.sum()
        np.testing.assert_allclose(matrix.demand_bps, expected)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            TrafficMatrix(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="finite"):
            TrafficMatrix(np.full((2, 2), np.nan))
        with pytest.raises(ValueError, match="non-negative"):
            TrafficMatrix(np.array([[0.0, -1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            TrafficMatrix(np.ones((2, 2)))
        with pytest.raises(ValueError):
            TrafficMatrix.gravity(count=1)
        with pytest.raises(ValueError):
            TrafficMatrix.gravity(count=5, total_offered_bps=0.0)
        with pytest.raises(ValueError):
            TrafficMatrix.permutation(10, rate_bps=-1.0)

    def test_matrix_is_read_only(self):
        matrix = TrafficMatrix.permutation(6)
        with pytest.raises(ValueError):
            matrix.demand_bps[0, 1] = 5.0

    def test_normalized_to(self):
        matrix = TrafficMatrix.gravity(count=8, total_offered_bps=1e6)
        scaled = matrix.normalized_to(3e6)
        assert scaled.total_offered_bps == pytest.approx(3e6)
        np.testing.assert_allclose(scaled.demand_bps,
                                   matrix.demand_bps * 3.0)

    def test_pairs_row_major_order(self):
        demand = np.zeros((3, 3))
        demand[2, 0] = 1.0
        demand[0, 2] = 1.0
        demand[1, 0] = 1.0
        matrix = TrafficMatrix(demand)
        assert matrix.pairs() == [(0, 2), (1, 0), (2, 0)]

    def test_permutation_matches_canonical_pairs(self):
        """The paper's §5.4 matrix is reproduced exactly: same pairs as
        random_permutation_pairs, one 10 Mbit/s entry each."""
        matrix = TrafficMatrix.permutation(num_stations=100)
        canonical = sorted(random_permutation_pairs(100))
        assert matrix.pairs() == canonical
        for src, dst in canonical:
            assert matrix.rate_bps(src, dst) == 10_000_000.0
        assert matrix.total_offered_bps == pytest.approx(1e9)

    def test_permutation_other_seed(self):
        default = TrafficMatrix.permutation(20)
        other = TrafficMatrix.permutation(20, seed=7)
        assert sorted(other.pairs()) == sorted(
            random_permutation_pairs(20, seed=7))
        assert default != other

    def test_json_round_trip_bit_identical(self, tmp_path):
        matrix = TrafficMatrix.gravity(count=12, total_offered_bps=7e7)
        path = tmp_path / "matrix.json"
        matrix.to_json(str(path))
        clone = TrafficMatrix.from_json(str(path))
        assert clone == matrix
        assert clone.kind == "gravity"
        with pytest.raises(ValueError, match="demand_bps"):
            TrafficMatrix.from_dict({"kind": "gravity"})

    def test_as_fluid_flows(self):
        matrix = TrafficMatrix.permutation(10)
        capped = matrix.as_fluid_flows()
        assert len(capped) == 10
        assert all(f.demand_bps == 10_000_000.0 for f in capped)
        elastic = matrix.as_fluid_flows(elastic=True)
        assert all(np.isinf(f.demand_bps) for f in elastic)
        assert ([(f.src_gid, f.dst_gid) for f in elastic]
                == matrix.pairs())


class TestFlowRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowRequest(-1.0, 0, 1, 100)
        with pytest.raises(ValueError):
            FlowRequest(float("nan"), 0, 1, 100)
        with pytest.raises(ValueError):
            FlowRequest(0.0, 1, 1, 100)
        with pytest.raises(ValueError):
            FlowRequest(0.0, -1, 1, 100)
        with pytest.raises(ValueError):
            FlowRequest(0.0, 0, 1, 0)

    def test_round_trip(self):
        request = FlowRequest(1.5, 2, 3, 4096)
        assert FlowRequest.from_dict(request.as_dict()) == request


class TestWorkloadSchedule:
    def _schedule(self):
        return WorkloadSchedule([
            FlowRequest(2.0, 0, 1, 1000),
            FlowRequest(0.5, 2, 3, 2000),
            FlowRequest(0.5, 0, 3, 3000),
        ], seed=9)

    def test_sorted_by_content(self):
        schedule = self._schedule()
        starts = [r.t_start_s for r in schedule]
        assert starts == sorted(starts)
        # Ties broken by (src, dst): (0, 3) before (2, 3).
        assert schedule.requests[0].src_gid == 0
        # Construction order never matters.
        reversed_order = WorkloadSchedule(
            list(self._schedule())[::-1], seed=9)
        assert reversed_order == schedule

    def test_accounting(self):
        schedule = self._schedule()
        assert schedule.num_flows == 3
        assert not schedule.is_empty
        assert schedule.end_s == 2.0
        assert schedule.offered_bits == 6000 * 8.0
        assert schedule.offered_load_bps(4.0) == pytest.approx(12_000.0)
        with pytest.raises(ValueError):
            schedule.offered_load_bps(0.0)
        assert schedule.pairs() == [(0, 1), (0, 3), (2, 3)]
        assert [r.t_start_s for r in schedule.arrivals_in(0.0, 1.0)] \
            == [0.5, 0.5]

    def test_merged(self):
        schedule = self._schedule()
        extra = WorkloadSchedule([FlowRequest(1.0, 4, 5, 10)], seed=1)
        union = schedule.merged(extra)
        assert union.num_flows == 4
        assert union.seed == 9
        assert union == WorkloadSchedule(
            list(schedule) + list(extra), seed=9)

    def test_as_fluid_flows_index_aligned(self):
        schedule = self._schedule()
        flows = schedule.as_fluid_flows()
        for flow, request in zip(flows, schedule):
            assert (flow.src_gid, flow.dst_gid) \
                == (request.src_gid, request.dst_gid)
            assert flow.start_s == request.t_start_s
            assert flow.size_bytes == float(request.size_bytes)
            assert flow.is_finite

    def test_json_round_trip(self, tmp_path):
        schedule = self._schedule()
        path = tmp_path / "workload.json"
        schedule.to_json(str(path))
        clone = WorkloadSchedule.from_json(str(path))
        assert clone == schedule
        with pytest.raises(ValueError, match="flows"):
            WorkloadSchedule.from_dict({"seed": 3})

    def test_schedule_pickles(self):
        import pickle
        schedule = self._schedule()
        assert pickle.loads(pickle.dumps(schedule)) == schedule


class TestFlowArrivalProcess:
    def _matrix(self):
        return TrafficMatrix.gravity(count=10, total_offered_bps=5e7)

    def test_same_seed_bit_identical(self):
        matrix = self._matrix()
        first = FlowArrivalProcess(matrix, seed=3).generate(30.0)
        second = FlowArrivalProcess(matrix, seed=3).generate(30.0)
        assert first == second

    def test_different_seed_differs(self):
        matrix = self._matrix()
        a = FlowArrivalProcess(matrix, seed=3).generate(30.0)
        b = FlowArrivalProcess(matrix, seed=4).generate(30.0)
        assert a != b

    def test_pair_streams_merge(self):
        """Pairs never couple: schedules from disjoint sub-matrices merge
        into exactly the union matrix's schedule."""
        demand = np.zeros((4, 4))
        demand[0, 1] = 2e6
        demand[2, 3] = 3e6
        union = FlowArrivalProcess(TrafficMatrix(demand),
                                   seed=5).generate(60.0)
        left = np.zeros((4, 4))
        left[0, 1] = 2e6
        right = np.zeros((4, 4))
        right[2, 3] = 3e6
        parts = FlowArrivalProcess(TrafficMatrix(left),
                                   seed=5).generate(60.0).merged(
            FlowArrivalProcess(TrafficMatrix(right), seed=5).generate(60.0))
        assert parts == union

    def test_offered_load_tracks_matrix(self):
        matrix = TrafficMatrix.gravity(count=20, total_offered_bps=1e8)
        schedule = FlowArrivalProcess(matrix, seed=0,
                                      mean_size_bytes=1e5).generate(120.0)
        offered = schedule.offered_load_bps(120.0)
        assert 0.7 * 1e8 < offered < 1.3 * 1e8

    def test_arrival_rate(self):
        matrix = TrafficMatrix.permutation(10)  # 10 Mbit/s per pair
        process = FlowArrivalProcess(matrix, mean_size_bytes=1e6)
        src, dst = matrix.pairs()[0]
        assert process.pair_arrival_rate(src, dst) \
            == pytest.approx(10e6 / 8e6)
        assert process.pair_arrival_rate(0, 0) == 0.0

    @pytest.mark.parametrize("dist", ["exponential", "lognormal", "pareto"])
    def test_size_distributions_hit_mean(self, dist):
        matrix = TrafficMatrix.permutation(4, rate_bps=1e9)
        process = FlowArrivalProcess(matrix, mean_size_bytes=1e6,
                                     size_distribution=dist, seed=11)
        schedule = process.generate(40.0)
        sizes = np.array([r.size_bytes for r in schedule], dtype=float)
        assert len(sizes) > 100
        assert (sizes >= process.min_size_bytes).all()
        # Heavy tails converge slowly; a loose band is the point here.
        assert 0.5e6 < sizes.mean() < 2.0e6

    def test_validation(self):
        matrix = self._matrix()
        with pytest.raises(ValueError):
            FlowArrivalProcess(matrix, mean_size_bytes=0.0)
        with pytest.raises(ValueError, match="unknown size distribution"):
            FlowArrivalProcess(matrix, size_distribution="uniform")
        with pytest.raises(ValueError):
            FlowArrivalProcess(matrix, lognormal_sigma=0.0)
        with pytest.raises(ValueError):
            FlowArrivalProcess(matrix, pareto_alpha=1.0)
        with pytest.raises(ValueError):
            FlowArrivalProcess(matrix, min_size_bytes=0)
        with pytest.raises(ValueError):
            FlowArrivalProcess(matrix).generate(0.0)


class TestFiniteFluidFlows:
    """Dynamic flows in the fluid engines: arrivals, completions, FCTs."""

    RATE = 1_000_000.0  # 1 Mbit/s links keep FCTs visible

    def _workload(self):
        return WorkloadSchedule([
            FlowRequest(0.0, 0, 3, 25_000),   # 0.2 Mbit
            FlowRequest(1.0, 1, 4, 50_000),   # 0.4 Mbit
            FlowRequest(2.5, 2, 5, 12_500),   # 0.1 Mbit
        ], seed=0)

    def test_maxmin_completes_finite_flows(self, small_network):
        sim = FluidSimulation(small_network,
                              self._workload().as_fluid_flows(),
                              link_capacity_bps=self.RATE)
        result = sim.run(duration_s=10.0, step_s=2.0)
        assert result.flow_fct_s is not None
        assert np.isfinite(result.flow_fct_s).all()
        np.testing.assert_allclose(result.flow_delivered_bits,
                                   result.flow_offered_bits)
        summary = result.perf_summary()
        assert summary["flows_completed"] == 3.0
        assert summary["flows_finite"] == 3.0
        assert summary["delivered_load_bps"] \
            == pytest.approx(summary["offered_load_bps"])
        assert result.perf["allocations_solved"] >= len(result.times_s)

    def test_maxmin_fct_matches_hand_computation(self, small_network):
        """A lone finite flow on idle links completes in size/rate."""
        flows = [FluidFlow(0, 3, start_s=0.5, size_bytes=25_000.0)]
        result = FluidSimulation(small_network, flows,
                                 link_capacity_bps=self.RATE).run(
            duration_s=6.0, step_s=1.0)
        assert result.flow_fct_s[0] == pytest.approx(0.2, abs=1e-6)

    def test_aimd_completes_finite_flows(self, small_network):
        sim = AimdFluidSimulation(small_network,
                                  self._workload().as_fluid_flows(),
                                  link_capacity_bps=self.RATE)
        result = sim.run(duration_s=30.0, step_s=1.0)
        assert result.flow_fct_s is not None
        assert np.isfinite(result.flow_fct_s).all()
        # AIMD delivers every byte, at substep resolution.
        np.testing.assert_allclose(result.flow_delivered_bits,
                                   result.flow_offered_bits, rtol=1e-6)
        assert result.perf_summary()["flows_completed"] == 3.0

    def test_static_run_reports_no_fct(self, small_network):
        result = FluidSimulation(small_network, [FluidFlow(0, 3)],
                                 link_capacity_bps=self.RATE).run(
            duration_s=4.0, step_s=2.0)
        assert result.flow_fct_s is None
        assert "flows_completed" not in result.perf_summary()
        assert "allocations_solved" not in result.perf

    def test_active_flow_series_recorded(self, small_network):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        FluidSimulation(small_network,
                        self._workload().as_fluid_flows(),
                        link_capacity_bps=self.RATE,
                        metrics=registry).run(duration_s=8.0, step_s=2.0)
        series = registry.series_logs["traffic.active_flows"]
        assert len(series.values) == 4

    def test_fluid_report_carries_fct_extras(self, small_network):
        from repro.obs.report import fluid_run_report
        result = FluidSimulation(small_network,
                                 self._workload().as_fluid_flows(),
                                 link_capacity_bps=self.RATE).run(
            duration_s=10.0, step_s=2.0)
        report = fluid_run_report(result)
        fct = report.as_dict()["fct"]
        assert fct["flows_finite"] == 3
        assert fct["flows_completed"] == 3
        assert fct["delivered_bits"] == pytest.approx(fct["offered_bits"])
        assert fct["histogram"]["count"] == 3
        assert sum(fct["histogram"]["buckets"].values()) == 3
        assert "fct:" in report.describe()

    def test_workload_through_hypatia_facade(self, small_network):
        """build_fluid_simulation(workload=...) appends the schedule's
        finite flows after the long-running ones."""
        from repro.core.hypatia import Hypatia
        hypatia = Hypatia.__new__(Hypatia)
        hypatia.network = small_network
        sim = Hypatia.build_fluid_simulation(
            hypatia, flows=[FluidFlow(0, 3)], mode="maxmin",
            link_capacity_bps=self.RATE, workload=self._workload())
        assert len(sim.flows) == 4
        assert not sim.flows[0].is_finite
        assert all(f.is_finite for f in sim.flows[1:])


class TestWorkloadSpawner:
    def _workload(self):
        return WorkloadSchedule([
            FlowRequest(0.0, 0, 3, 30_000),
            FlowRequest(0.5, 1, 4, 15_000),
        ], seed=0)

    def test_spawner_runs_and_completes(self, small_network):
        from repro.obs import MetricsRegistry
        from repro.simulation.simulator import LinkConfig, PacketSimulator
        registry = MetricsRegistry()
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=1e6, gsl_rate_bps=1e6))
        spawner = WorkloadSpawner(self._workload(),
                                  metrics=registry).install(sim)
        sim.run(20.0)
        assert spawner.started == 2
        assert spawner.completed == 2
        assert spawner.active == 0
        assert all(fct > 0.0 for fct in spawner.fcts_s)
        summary = spawner.summary()
        assert summary["flows_completed"] == 2.0
        assert summary["delivered_bytes"] == 45_000.0
        assert "fct_p99_s" in summary
        assert registry.counters["traffic.flows_completed"].value == 2.0
        assert registry.counters["traffic.offered_bytes"].value == 45_000.0
        assert len(registry.series_logs["traffic.active_flows"].values) == 4
        extras = spawner.fct_extras()
        assert extras["flows_completed"] == 2
        assert extras["delivered_bits"] == 45_000.0 * 8.0
        assert extras["histogram"]["count"] == 2

    def test_install_twice_rejected(self, small_network):
        from repro.simulation.simulator import PacketSimulator
        sim = PacketSimulator(small_network)
        spawner = WorkloadSpawner(self._workload()).install(sim)
        with pytest.raises(RuntimeError):
            spawner.install(sim)

    def test_tiny_packet_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpawner(self._workload(), packet_bytes=10)

    def test_fluid_and_packet_fcts_agree(self, small_network):
        """The acceptance check: on a small scenario, fluid FCTs land in
        the same range as packet-level TCP FCTs."""
        from repro.simulation.simulator import LinkConfig, PacketSimulator
        workload = WorkloadSchedule([
            FlowRequest(0.0, 0, 3, 200_000),
            FlowRequest(0.0, 1, 4, 200_000),
        ], seed=0)
        rate = 2_000_000.0
        fluid = FluidSimulation(small_network, workload.as_fluid_flows(),
                                link_capacity_bps=rate).run(
            duration_s=20.0, step_s=1.0)
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_rate_bps=rate,
                                         gsl_rate_bps=rate))
        spawner = WorkloadSpawner(workload).install(sim)
        sim.run(20.0)
        assert spawner.completed == 2
        for fluid_fct, packet_fct in zip(fluid.flow_fct_s,
                                         sorted(spawner.fcts_s)):
            # Fluid is the ideal envelope: TCP takes longer (slow start,
            # headers) but within a small factor on an idle network.
            assert fluid_fct <= packet_fct * 1.05
            assert packet_fct < 6.0 * fluid_fct


class TestWorkloadSweep:
    def _workload(self):
        matrix = np.zeros((6, 6))
        matrix[0, 3] = matrix[1, 4] = matrix[2, 5] = 1e6
        return FlowArrivalProcess(TrafficMatrix(matrix),
                                  mean_size_bytes=1e5,
                                  seed=2).generate(10.0)

    def test_spec_carries_workload(self, small_network):
        import pickle
        from repro.sweep import NetworkSpec
        workload = self._workload()
        spec = NetworkSpec.from_network(small_network)
        assert spec.workload is None
        loaded = spec.with_workload(workload)
        assert loaded.workload == workload
        assert spec.workload is None  # original untouched
        clone = pickle.loads(pickle.dumps(loaded))
        assert clone == loaded
        assert clone.workload == workload
        # build() ignores the workload: same topology either way.
        assert np.array_equal(loaded.build().isl_pairs,
                              small_network.isl_pairs)

    def test_workload_sweep_parallel_matches_serial(self, small_network):
        from repro.sweep import NetworkSpec, sweep_timelines
        from repro.topology.dynamic_state import snapshot_times
        spec = NetworkSpec.from_network(small_network).with_workload(
            self._workload())
        pairs = spec.workload.pairs()
        assert pairs == [(0, 3), (1, 4), (2, 5)]
        times = snapshot_times(10.0, 1.0)
        serial = sweep_timelines(spec, pairs, times, workers=1)
        parallel = sweep_timelines(spec, pairs, times, workers=4)
        for pair in pairs:
            assert np.array_equal(parallel[pair].distances_m,
                                  serial[pair].distances_m,
                                  equal_nan=True)
            assert parallel[pair].paths == serial[pair].paths


class TestTrafficCli:
    def test_traffic_command_writes_workload(self, capsys, tmp_path):
        from repro.cli import main
        out = tmp_path / "workload.json"
        matrix_out = tmp_path / "matrix.json"
        code = main(["traffic", "-o", str(out), "--cities", "10",
                     "--total-mbps", "50", "--duration", "20",
                     "--seed", "7", "--matrix-out", str(matrix_out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "flow arrivals" in captured
        schedule = WorkloadSchedule.from_json(str(out))
        assert schedule.seed == 7
        assert not schedule.is_empty
        matrix = TrafficMatrix.from_json(str(matrix_out))
        assert matrix.kind == "gravity"
        assert matrix.num_stations == 10

    def test_traffic_command_is_deterministic(self, tmp_path):
        from repro.cli import main
        args = ["traffic", "--cities", "8", "--total-mbps", "20",
                "--duration", "15", "--seed", "3"]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(args + ["-o", str(first)]) == 0
        assert main(args + ["-o", str(second)]) == 0
        assert first.read_text() == second.read_text()

    def test_traffic_permutation_model(self, capsys, tmp_path):
        from repro.cli import main
        out = tmp_path / "perm.json"
        code = main(["traffic", "-o", str(out), "--model", "permutation",
                     "--cities", "12", "--pair-mbps", "5",
                     "--duration", "10"])
        assert code == 0
        schedule = WorkloadSchedule.from_json(str(out))
        assert set(schedule.pairs()) <= set(
            random_permutation_pairs(12))

    def test_report_with_workload_fluid(self, capsys, tmp_path):
        from repro.cli import main
        workload = tmp_path / "w.json"
        WorkloadSchedule([FlowRequest(0.0, 0, 40, 50_000)],
                         seed=0).to_json(str(workload))
        out = tmp_path / "report.json"
        code = main(["report", "K1", "--engine", "maxmin",
                     "--workload", str(workload), "--duration", "4",
                     "--step", "2", "-o", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "fluid.maxmin"
        assert payload["fct"]["flows_finite"] == 1
        assert "fct:" in capsys.readouterr().out

    def test_report_without_pair_or_workload_fails(self, capsys):
        from repro.cli import main
        code = main(["report", "K1", "--engine", "maxmin"])
        assert code != 0

    def test_fct_buckets_exported(self):
        assert FCT_BUCKETS[0] == 0.03
        assert list(FCT_BUCKETS) == sorted(FCT_BUCKETS)
