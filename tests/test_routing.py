"""Tests for the shortest-path routing engine."""

import numpy as np
import pytest

from repro.routing.engine import UNREACHABLE, RoutingEngine
from repro.topology.dynamic_state import (
    DynamicState,
    PairTimeline,
    count_path_changes,
    satellites_of_path,
    snapshot_times,
)
from repro.topology.isl import no_isls
from repro.topology.network import LeoNetwork


@pytest.fixture
def engine(small_network) -> RoutingEngine:
    return RoutingEngine(small_network)


class TestRouteTo:
    def test_distances_positive_and_finite_for_satellites(
            self, small_network, engine):
        snap = small_network.snapshot(0.0)
        routing = engine.route_to(snap, 0)
        sat_distances = routing.distance_m[:small_network.num_satellites]
        assert np.isfinite(sat_distances).all()
        assert (sat_distances > 0).all()

    def test_next_hops_walk_to_destination(self, small_network, engine):
        snap = small_network.snapshot(0.0)
        routing = engine.route_to(snap, 2)
        dst_node = snap.gs_node_id(2)
        for sat in range(0, small_network.num_satellites, 7):
            current = sat
            for _ in range(small_network.num_nodes):
                nxt = routing.next_hop[current]
                if nxt == dst_node:
                    break
                assert nxt != UNREACHABLE
                current = int(nxt)
            else:
                pytest.fail(f"walk from satellite {sat} never reached dst")

    def test_distance_decreases_along_next_hops(self, small_network, engine):
        snap = small_network.snapshot(0.0)
        routing = engine.route_to(snap, 1)
        for sat in range(small_network.num_satellites):
            nxt = int(routing.next_hop[sat])
            if nxt == UNREACHABLE or nxt == routing.dst_node:
                continue
            assert routing.distance_m[nxt] < routing.distance_m[sat]

    def test_other_gs_nodes_not_transit(self, small_network, engine):
        """Paths never route through a third (non-relay) ground station."""
        snap = small_network.snapshot(0.0)
        for dst in range(6):
            routing = engine.route_to(snap, dst)
            for src in range(6):
                if src == dst:
                    continue
                path = engine.path_via(routing, snap, src)
                if path is None:
                    continue
                for node in path[1:-1]:
                    assert node < small_network.num_satellites


class TestBatchedRouting:
    def test_route_to_many_matches_route_to(self, small_network, engine):
        """The batched trees are bit-identical to per-destination ones."""
        snap = small_network.snapshot(0.0)
        destinations = list(range(6))
        multi = engine.route_to_many(snap, destinations)
        for dst_gid in destinations:
            single = engine.route_to(snap, dst_gid)
            batched = multi.routing_for(dst_gid)
            assert batched.dst_node == single.dst_node
            np.testing.assert_array_equal(batched.distance_m,
                                          single.distance_m)
            np.testing.assert_array_equal(batched.next_hop, single.next_hop)

    def test_trees_isolated_from_other_destinations(self, small_network,
                                                    engine):
        """Destination GSLs are directed: tree A never transits GS B even
        though B's edges sit in the same batched matrix."""
        snap = small_network.snapshot(0.0)
        multi = engine.route_to_many(snap, list(range(6)))
        for dst_gid in range(6):
            row = multi.routing_for(dst_gid)
            for other in range(6):
                if other == dst_gid:
                    continue
                assert row.distance_m[snap.gs_node_id(other)] == np.inf

    def test_duplicate_destinations_deduplicated(self, small_network,
                                                 engine):
        snap = small_network.snapshot(0.0)
        multi = engine.route_to_many(snap, [3, 1, 3, 1, 3])
        assert multi.dst_gids == (3, 1)
        assert multi.distance_m.shape[0] == 2

    def test_empty_destinations_rejected(self, small_network, engine):
        with pytest.raises(ValueError):
            engine.route_to_many(small_network.snapshot(0.0), [])

    def test_source_ingress_many_matches_scalar(self, small_network,
                                                engine):
        snap = small_network.snapshot(0.0)
        multi = engine.route_to_many(snap, [1, 2, 4])
        for src_gid in range(6):
            edges = snap.gsl_edges[src_gid]
            ingress, totals = multi.source_ingress_many(edges)
            for row, dst_gid in enumerate(multi.dst_gids):
                expected_sat, expected_total = \
                    multi.routing_for(dst_gid).source_ingress(edges)
                if expected_sat is None:
                    assert ingress[row] == UNREACHABLE
                    assert totals[row] == np.inf
                else:
                    assert ingress[row] == expected_sat
                    assert totals[row] == expected_total

    def test_transit_cache_reused_within_snapshot(self, small_network,
                                                  engine):
        snap = small_network.snapshot(0.0)
        engine.route_to_many(snap, [0, 1])
        engine.route_to_many(snap, [2, 3])
        assert engine.perf.transit_builds == 1
        assert engine.perf.transit_cache_hits == 1
        assert engine.perf.trees_computed == 4
        assert engine.perf.dijkstra_calls == 2

    def test_transit_cache_invalidated_by_new_snapshot(self, small_network,
                                                       engine):
        engine.route_to_many(small_network.snapshot(0.0), [0])
        engine.route_to_many(small_network.snapshot(1.0), [0])
        assert engine.perf.transit_builds == 2
        assert engine.perf.csr_rebuilds_avoided == 0

    def test_paths_many_matches_path(self, small_network, engine):
        snap = small_network.snapshot(0.0)
        pairs = [(0, 3), (1, 4), (2, 5), (5, 2)]
        batched = engine.paths_many(snap, pairs)
        for (src, dst), path in zip(pairs, batched):
            assert path == engine.path(snap, src, dst)

    def test_paths_many_empty(self, small_network, engine):
        assert engine.paths_many(small_network.snapshot(0.0), []) == []


class TestPairQueries:
    def test_path_endpoints(self, small_network, engine):
        snap = small_network.snapshot(0.0)
        path = engine.path(snap, 0, 3)
        assert path is not None
        assert path[0] == snap.gs_node_id(0)
        assert path[-1] == snap.gs_node_id(3)

    def test_path_edges_exist(self, small_network, engine):
        """Every hop of a returned path is an actual edge of the graph."""
        snap = small_network.snapshot(0.0)
        graph = snap.to_networkx()
        path = engine.path(snap, 1, 4)
        assert path is not None
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_distance_matches_path_length(self, small_network, engine):
        snap = small_network.snapshot(0.0)
        graph = snap.to_networkx()
        path = engine.path(snap, 0, 5)
        distance = engine.pair_distance_m(snap, 0, 5)
        total = sum(graph[a][b]["distance_m"] for a, b in zip(path, path[1:]))
        assert distance == pytest.approx(total, rel=1e-9)

    def test_distance_matches_networkx_shortest_path(self, small_network,
                                                     engine):
        """Cross-validation against networkx Dijkstra on the same graph,
        with other GS nodes removed (they cannot transit)."""
        import networkx as nx
        snap = small_network.snapshot(0.0)
        for src, dst in [(0, 3), (1, 5), (2, 4)]:
            graph = snap.to_networkx()
            for gid in range(6):
                if gid not in (src, dst):
                    graph.remove_node(snap.gs_node_id(gid))
            expected = nx.shortest_path_length(
                graph, snap.gs_node_id(src), snap.gs_node_id(dst),
                weight="distance_m")
            actual = engine.pair_distance_m(snap, src, dst)
            assert actual == pytest.approx(expected, rel=1e-9)

    def test_same_gid_distance_is_zero(self, small_network, engine):
        """Regression: a station is at distance 0 from itself; the old
        code returned an uplink-based value inconsistent with
        ``distances_to``."""
        snap = small_network.snapshot(0.0)
        assert engine.pair_distance_m(snap, 2, 2) == 0.0
        assert engine.pair_rtt_s(snap, 2, 2) == 0.0
        distances = engine.distances_to(snap, 2, [0, 2, 4])
        assert distances[1] == 0.0

    def test_rtt_is_distance_at_lightspeed(self, small_network, engine):
        snap = small_network.snapshot(0.0)
        d = engine.pair_distance_m(snap, 0, 3)
        rtt = engine.pair_rtt_s(snap, 0, 3)
        assert rtt == pytest.approx(2 * d / 299_792_458.0)

    def test_all_pairs_matrix_symmetric(self, small_network, engine):
        snap = small_network.snapshot(0.0)
        matrix = engine.all_pairs_distance_m(snap)
        assert matrix.shape == (6, 6)
        np.testing.assert_allclose(matrix, matrix.T, rtol=1e-9)
        assert (np.diag(matrix) == 0).all()

    def test_disconnected_pair_is_inf(self, small_constellation,
                                      small_stations):
        # Without ISLs and without relays, distant GSes cannot reach
        # each other through a single bent pipe.
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=15.0, isl_builder=no_isls)
        engine = RoutingEngine(network)
        snap = network.snapshot(0.0)
        # Quito (0) and Singapore (2) are on opposite sides of the Earth:
        # no single satellite can see both.
        assert engine.pair_distance_m(snap, 0, 2) == np.inf
        assert engine.path(snap, 0, 2) is None


class TestDynamicState:
    def test_snapshot_times(self):
        times = snapshot_times(1.0, 0.25)
        np.testing.assert_allclose(times, [0.0, 0.25, 0.5, 0.75])

    def test_snapshot_times_validation(self):
        with pytest.raises(ValueError):
            snapshot_times(0.0, 0.1)
        with pytest.raises(ValueError):
            snapshot_times(1.0, 0.0)

    def test_timeline_shapes(self, small_network):
        state = DynamicState(small_network, [(0, 3), (1, 4)],
                             duration_s=5.0, step_s=1.0)
        timelines = state.compute()
        assert set(timelines) == {(0, 3), (1, 4)}
        tl = timelines[(0, 3)]
        assert len(tl.times_s) == 5
        assert len(tl.paths) == 5
        assert tl.rtts_s.shape == (5,)

    def test_rtts_match_engine(self, small_network, engine):
        state = DynamicState(small_network, [(0, 3)], duration_s=3.0,
                             step_s=1.0)
        tl = state.compute()[(0, 3)]
        for i, t in enumerate(tl.times_s):
            expected = engine.pair_rtt_s(small_network.snapshot(float(t)),
                                         0, 3)
            assert tl.rtts_s[i] == pytest.approx(expected, rel=1e-9)

    def test_equal_endpoints_rejected(self, small_network):
        with pytest.raises(ValueError):
            DynamicState(small_network, [(2, 2)], duration_s=1.0)

    def test_empty_pairs_rejected(self, small_network):
        with pytest.raises(ValueError):
            DynamicState(small_network, [], duration_s=1.0)

    def test_hop_counts(self, small_network):
        state = DynamicState(small_network, [(0, 3)], duration_s=2.0,
                             step_s=1.0)
        tl = state.compute()[(0, 3)]
        hops = tl.hop_counts()
        assert hops.dtype == np.int64
        connected = tl.connected_mask
        for i in range(len(hops)):
            if connected[i]:
                assert hops[i] == len(tl.paths[i]) - 1
            else:
                assert hops[i] == -1

    def test_hop_counts_empty_is_int64(self):
        """Regression: an empty paths list produced a float64 array."""
        tl = PairTimeline(src_gid=0, dst_gid=1,
                          times_s=np.empty(0),
                          distances_m=np.empty(0), paths=[])
        hops = tl.hop_counts()
        assert hops.dtype == np.int64
        assert hops.shape == (0,)

    def test_hop_counts_all_disconnected_is_int64(self):
        tl = PairTimeline(src_gid=0, dst_gid=1,
                          times_s=np.arange(3, dtype=float),
                          distances_m=np.full(3, np.inf),
                          paths=[None, None, None])
        hops = tl.hop_counts()
        assert hops.dtype == np.int64
        assert list(hops) == [-1, -1, -1]


class TestPathChangeCounting:
    def test_satellites_of_path(self):
        assert satellites_of_path([70, 3, 5, 71], 64) == frozenset({3, 5})
        assert satellites_of_path(None, 64) == frozenset()

    def test_no_changes(self):
        sets = [frozenset({1, 2})] * 5
        assert count_path_changes(sets) == 0

    def test_each_transition_counted(self):
        sets = [frozenset({1}), frozenset({2}), frozenset({2}),
                frozenset({1})]
        assert count_path_changes(sets) == 2

    def test_disconnection_counts_as_change(self):
        sets = [frozenset({1}), frozenset(), frozenset({1})]
        assert count_path_changes(sets) == 2

    def test_empty_sequence(self):
        assert count_path_changes([]) == 0
