"""Tests for the simplified BBR implementation."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultSchedule
from repro.routing.engine import RoutingEngine
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.topology.network import LeoNetwork
from repro.transport.bbr import TcpBbrFlow
from repro.transport.tcp import TcpNewRenoFlow


class TestBbrBasics:
    def test_finite_transfer_completes(self, small_network):
        sim = PacketSimulator(small_network)
        bbr = TcpBbrFlow(0, 3, max_packets=300).install(sim)
        sim.run(20.0)
        assert bbr.snd_una == 300
        assert bbr.rcv_nxt == 300

    def test_reaches_bottleneck_bandwidth(self, small_network):
        sim = PacketSimulator(small_network)
        bbr = TcpBbrFlow(0, 3).install(sim)
        sim.run(20.0)
        assert bbr.btl_bw_bps == pytest.approx(10e6, rel=0.15)
        assert bbr.goodput_bps(20.0) > 6e6

    def test_exits_startup(self, small_network):
        sim = PacketSimulator(small_network)
        bbr = TcpBbrFlow(0, 3).install(sim)
        sim.run(10.0)
        assert bbr._mode == "probe_bw"

    def test_rt_prop_near_path_rtt(self, small_network):
        engine = RoutingEngine(small_network)
        base = engine.pair_rtt_s(small_network.snapshot(0.0), 0, 3)
        sim = PacketSimulator(small_network)
        bbr = TcpBbrFlow(0, 3).install(sim)
        sim.run(15.0)
        # rt_prop includes per-hop serialization, so allow headroom above
        # the propagation-only figure.
        assert base * 0.95 < bbr.rt_prop_s < base + 0.08

    def test_keeps_queue_shallower_than_newreno(self, small_network):
        sim_a = PacketSimulator(small_network)
        bbr = TcpBbrFlow(0, 3).install(sim_a)
        sim_a.run(20.0)
        sim_b = PacketSimulator(small_network)
        reno = TcpNewRenoFlow(0, 3).install(sim_b)
        sim_b.run(20.0)
        _, bbr_rtt = bbr.rtt_log.as_arrays()
        _, reno_rtt = reno.rtt_log.as_arrays()
        later = slice(len(bbr_rtt) // 2, None)
        assert np.median(bbr_rtt[later]) < np.median(
            reno_rtt[len(reno_rtt) // 2:])

    def test_min_rtt_window_expires_old_samples(self, small_network):
        """The LEO-critical property: after a path-change RTT increase,
        rt_prop adopts the new value within the 10 s window, unlike
        Vegas' all-time minimum."""
        sim = PacketSimulator(small_network)
        # A finite transfer: once it completes, the flow produces no
        # genuine samples and the injected post-change samples rule.
        bbr = TcpBbrFlow(0, 3, max_packets=100).install(sim)
        sim.run(5.0)
        assert bbr.snd_una == 100
        old_rt_prop = bbr.rt_prop_s
        # Synthetic +30 ms samples, as if the path lengthened.
        for i in range(40):
            sim.run(5.0 + (i + 1) * 0.4)
            bbr._on_rtt_sample(old_rt_prop + 0.03)
        assert bbr.rt_prop_s >= old_rt_prop + 0.029

    def test_cwnd_tracks_two_bdp(self, small_network):
        sim = PacketSimulator(small_network)
        bbr = TcpBbrFlow(0, 3).install(sim)
        sim.run(20.0)
        expected = 2.0 * bbr.btl_bw_bps * bbr.rt_prop_s / (1500 * 8)
        assert bbr.cwnd == pytest.approx(max(4.0, expected), rel=0.01)

    def test_recovers_from_mid_flow_loss_burst(self, small_constellation,
                                               small_stations):
        """A seeded fault burst (30% loss on the source uplink over
        [8, 11) s) dents BBR's delivery but the model-driven cwnd and
        pacing recover once the burst ends, instead of staying collapsed
        the way a loss-halving controller would."""
        faults = FaultSchedule([
            FaultEvent.packet_loss(8.0, 11.0, 0.3, gid=0)], seed=3)
        network = LeoNetwork(small_constellation, small_stations,
                             min_elevation_deg=10.0, faults=faults)
        sim = PacketSimulator(network)
        bbr = TcpBbrFlow(0, 3).install(sim)
        sim.run(8.0)
        before_rcv = bbr.rcv_nxt
        before_cwnd = bbr.cwnd
        sim.run(11.0)
        burst_rcv = bbr.rcv_nxt
        sim.run(20.0)
        # The burst really happened and really hurt delivery.
        assert sim.stats.packets_dropped_fault > 0
        burst_rate = (burst_rcv - before_rcv) / 3.0
        after_rate = (bbr.rcv_nxt - burst_rcv) / 9.0
        assert after_rate > burst_rate
        # Recovery shape: cwnd back at the model's 2-BDP operating point,
        # within 10% of its pre-burst level, and pacing tracks btl_bw.
        expected = 2.0 * bbr.btl_bw_bps * bbr.rt_prop_s / (1500 * 8)
        assert bbr.cwnd == pytest.approx(max(4.0, expected), rel=0.01)
        assert bbr.cwnd == pytest.approx(before_cwnd, rel=0.1)
        assert bbr._pacing_rate_bps >= 0.9 * bbr.btl_bw_bps
        assert bbr.goodput_bps(20.0) > 2.5e6

    def test_cwnd_tracks_abrupt_rtt_step(self, small_network):
        """An abrupt +40 ms RTT step (handover to a longer path): the
        in-flight cap follows rt_prop up — cwnd grows towards the new
        2-BDP once the min-RTT window expires — and pacing, which is
        bandwidth- not RTT-derived, stays put."""
        sim = PacketSimulator(small_network)
        bbr = TcpBbrFlow(0, 3, max_packets=100).install(sim)
        sim.run(5.0)
        assert bbr.snd_una == 100  # transfer done; samples now synthetic
        fixed_bw = bbr.btl_bw_bps  # pin the bandwidth leg of the model
        old_rt_prop = bbr.rt_prop_s
        packet_bits = bbr.packet_bytes * 8.0
        old_cwnd = max(4.0, 2.0 * fixed_bw * old_rt_prop / packet_bits)
        pacing_at_step = None
        for i in range(40):
            sim.run(5.0 + (i + 1) * 0.4)
            bbr._bw_filter.append((sim.now, fixed_bw))
            bbr._on_rtt_sample(old_rt_prop + 0.04)
            if pacing_at_step is None:
                pacing_at_step = bbr._pacing_rate_bps
        assert bbr.rt_prop_s >= old_rt_prop + 0.039
        # cwnd scales with rt_prop: new/old ratio matches the RTT ratio.
        assert bbr.cwnd == pytest.approx(
            max(4.0, 2.0 * fixed_bw * bbr.rt_prop_s / packet_bits))
        assert bbr.cwnd / old_cwnd == pytest.approx(
            bbr.rt_prop_s / old_rt_prop, rel=0.05)
        # Pacing is bandwidth-derived, not RTT-derived: with the estimate
        # pinned, the growing rt_prop never moves the pacing rate.
        assert bbr._pacing_rate_bps == pytest.approx(pacing_at_step)
        # A step *down* is adopted immediately (min filter, no window).
        bbr._on_rtt_sample(old_rt_prop / 2.0)
        assert bbr.rt_prop_s == pytest.approx(old_rt_prop / 2.0)

    def test_loss_does_not_collapse_rate(self, small_network):
        """With tiny buffers (heavy loss), BBR keeps making progress at a
        substantial fraction of the bottleneck (BBR v1 is known to be
        loss-heavy at its 2-BDP in-flight cap over shallow buffers, but
        it does not collapse to the floor)."""
        sim = PacketSimulator(small_network,
                              LinkConfig(isl_queue_packets=10,
                                         gsl_queue_packets=10))
        bbr = TcpBbrFlow(0, 3).install(sim)
        sim.run(20.0)
        assert bbr.goodput_bps(20.0) > 2.5e6
        assert bbr.rcv_nxt > 0
