"""Tests for the CLI, TLE file I/O, and GEO support."""

import numpy as np
import pytest

from repro.cli import main
from repro.constellations.builder import Constellation
from repro.constellations.definitions import (
    GEO_ALTITUDE_M,
    geostationary_belt,
)
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.orbits.tle import (
    TLEFormatError,
    generate_tle,
    read_tle_file,
    write_tle_file,
)
from repro.orbits.kepler import KeplerianElements
from repro.routing.engine import RoutingEngine
from repro.topology.isl import no_isls
from repro.topology.network import LeoNetwork


class TestTleFileIo:
    def _tles(self):
        elements = [
            KeplerianElements.circular(600_000.0, 53.0, raan_deg=i * 30.0)
            for i in range(4)
        ]
        return [generate_tle(el, f"sat-{i}", catalog_number=i)
                for i, el in enumerate(elements)]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "constellation.tle"
        tles = self._tles()
        write_tle_file(tles, path)
        loaded = read_tle_file(path)
        assert loaded == tles

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "bad.tle"
        tles = self._tles()
        write_tle_file(tles, path)
        content = path.read_text().splitlines()
        path.write_text("\n".join(content[:-1]) + "\n")
        with pytest.raises(TLEFormatError):
            read_tle_file(path)

    def test_rejects_corrupted_checksum(self, tmp_path):
        path = tmp_path / "bad.tle"
        tles = self._tles()
        write_tle_file(tles, path)
        content = path.read_text()
        # Flip a digit inside the first line-2 inclination field.
        corrupted = content.replace(" 53.0000", " 54.0000", 1)
        path.write_text(corrupted)
        with pytest.raises(TLEFormatError):
            read_tle_file(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "spaced.tle"
        tles = self._tles()[:1]
        path.write_text("\n" + "\n\n".join(tles[0].as_lines()) + "\n\n")
        assert read_tle_file(path) == tles


class TestGeoSupport:
    def test_belt_stationary_in_ecef(self):
        belt = Constellation([geostationary_belt(4)])
        p0 = belt.positions_ecef_m(0.0)
        p1 = belt.positions_ecef_m(1800.0)
        # Two-body GEO drifts only meters per hour in ECEF.
        drift = np.linalg.norm(p1 - p0, axis=1)
        assert (drift < 50.0).all()

    def test_geo_radius(self):
        belt = Constellation([geostationary_belt(1)])
        radius = np.linalg.norm(belt.positions_ecef_m(0.0)[0])
        assert radius == pytest.approx(42_164_000, rel=0.001)

    def test_geo_latency_hundreds_of_ms(self):
        """Paper §2.4: GEO bent-pipe connections incur hundreds of ms."""
        belt = Constellation([geostationary_belt(6)])
        stations = [
            GroundStation(0, "quito", GeodeticPosition(0.0, -78.5)),
            GroundStation(1, "manaus", GeodeticPosition(-3.1, -60.0)),
        ]
        network = LeoNetwork(belt, stations, min_elevation_deg=10.0,
                             isl_builder=no_isls)
        engine = RoutingEngine(network)
        rtt = engine.pair_rtt_s(network.snapshot(0.0), 0, 1)
        assert np.isfinite(rtt)
        assert rtt > 0.4  # ~2 x (up + down) at 35,786 km

    def test_validation(self):
        with pytest.raises(ValueError):
            geostationary_belt(0)

    def test_altitude_constant(self):
        assert GEO_ALTITUDE_M == 35_786_000.0


class TestCli:
    def test_info_table(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Starlink" in out and "Telesat" in out
        assert "4409" in out

    def test_info_single_shell(self, capsys):
        assert main(["info", "T1"]) == 0
        out = capsys.readouterr().out
        assert "98.98" in out

    def test_rtt_command(self, capsys):
        assert main(["rtt", "K1", "Manila", "Dalian",
                     "--duration", "4", "--step", "2"]) == 0
        out = capsys.readouterr().out
        assert "RTT min/median/max" in out
        assert "connected" in out

    def test_tles_command(self, tmp_path, capsys):
        output = tmp_path / "t1.tle"
        assert main(["tles", "T1", "-o", str(output)]) == 0
        loaded = read_tle_file(output)
        assert len(loaded) == 351

    def test_czml_command(self, tmp_path, capsys):
        import json
        output = tmp_path / "t1.czml"
        assert main(["czml", "T1", "-o", str(output),
                     "--duration", "60", "--step", "30"]) == 0
        document = json.loads(output.read_text())
        assert len(document) == 1 + 351

    def test_sky_command(self, capsys):
        assert main(["sky", "K1", "Saint Petersburg", "--time", "0"]) == 0
        out = capsys.readouterr().out
        assert "above horizon" in out

    def test_unknown_shell_errors(self, capsys):
        assert main(["info", "Z9"]) == 2
        assert "unknown shell" in capsys.readouterr().err
