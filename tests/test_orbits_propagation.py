"""Tests for two-body propagation."""

import math

import numpy as np
import pytest

from repro.geo.constants import EARTH_MU_M3_PER_S2, WGS72
from repro.orbits.kepler import KeplerianElements
from repro.orbits.propagation import (
    OrbitState,
    perifocal_to_eci_matrix,
    propagate_to_ecef,
    propagate_to_eci,
)


@pytest.fixture
def circular_leo() -> KeplerianElements:
    return KeplerianElements.circular(550_000.0, 53.0)


class TestPerifocalMatrix:
    def test_identity_for_zero_angles(self):
        el = KeplerianElements(semi_major_axis_m=7e6)
        np.testing.assert_allclose(perifocal_to_eci_matrix(el), np.eye(3),
                                   atol=1e-15)

    def test_orthonormal(self):
        el = KeplerianElements(semi_major_axis_m=7e6,
                               inclination_rad=1.0, raan_rad=2.0,
                               arg_periapsis_rad=0.5)
        rot = perifocal_to_eci_matrix(el)
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)

    def test_determinant_plus_one(self):
        el = KeplerianElements(semi_major_axis_m=7e6,
                               inclination_rad=0.9, raan_rad=4.0)
        assert np.linalg.det(perifocal_to_eci_matrix(el)) == \
            pytest.approx(1.0)


class TestCircularPropagation:
    def test_radius_constant(self, circular_leo):
        radii = [propagate_to_eci(circular_leo, t).radius_m
                 for t in np.linspace(0, circular_leo.period_s, 17)]
        np.testing.assert_allclose(
            radii, circular_leo.semi_major_axis_m, rtol=1e-12)

    def test_speed_matches_vis_viva(self, circular_leo):
        state = propagate_to_eci(circular_leo, 100.0)
        expected = math.sqrt(
            EARTH_MU_M3_PER_S2 / circular_leo.semi_major_axis_m)
        assert state.speed_m_per_s == pytest.approx(expected, rel=1e-12)

    def test_returns_to_start_after_period(self, circular_leo):
        start = propagate_to_eci(circular_leo, 0.0)
        end = propagate_to_eci(circular_leo, circular_leo.period_s)
        np.testing.assert_allclose(end.position_m, start.position_m,
                                   atol=1.0)

    def test_half_period_is_opposite(self, circular_leo):
        start = propagate_to_eci(circular_leo, 0.0)
        half = propagate_to_eci(circular_leo, circular_leo.period_s / 2.0)
        np.testing.assert_allclose(half.position_m, -start.position_m,
                                   atol=1.0)

    def test_velocity_perpendicular_to_position(self, circular_leo):
        state = propagate_to_eci(circular_leo, 321.0)
        dot = float(np.dot(state.position_m, state.velocity_m_per_s))
        assert abs(dot) < 1.0  # numerically ~0 for circular orbits

    def test_max_z_bounded_by_inclination(self, circular_leo):
        max_z = max(
            abs(propagate_to_eci(circular_leo, t).position_m[2])
            for t in np.linspace(0, circular_leo.period_s, 200))
        bound = circular_leo.semi_major_axis_m * math.sin(
            circular_leo.inclination_rad)
        assert max_z <= bound * (1 + 1e-9)
        assert max_z > bound * 0.99  # and the bound is reached

    def test_equatorial_orbit_stays_in_plane(self):
        el = KeplerianElements.circular(550_000.0, 0.0)
        for t in [0.0, 1000.0, 3000.0]:
            assert propagate_to_eci(el, t).position_m[2] == pytest.approx(
                0.0, abs=1e-6)


class TestEllipticalPropagation:
    def test_apoapsis_and_periapsis_radii(self):
        a, e = 8e6, 0.2
        el = KeplerianElements(semi_major_axis_m=a, eccentricity=e)
        peri = propagate_to_eci(el, 0.0)  # mean anomaly 0 = periapsis
        assert peri.radius_m == pytest.approx(a * (1 - e), rel=1e-9)
        apo = propagate_to_eci(el, el.period_s / 2.0)
        assert apo.radius_m == pytest.approx(a * (1 + e), rel=1e-9)

    def test_faster_at_periapsis(self):
        el = KeplerianElements(semi_major_axis_m=8e6, eccentricity=0.3)
        v_peri = propagate_to_eci(el, 0.0).speed_m_per_s
        v_apo = propagate_to_eci(el, el.period_s / 2.0).speed_m_per_s
        assert v_peri > v_apo

    def test_vis_viva_everywhere(self):
        el = KeplerianElements(semi_major_axis_m=7.5e6, eccentricity=0.4)
        for t in np.linspace(0, el.period_s, 13):
            state = propagate_to_eci(el, float(t))
            expected = math.sqrt(EARTH_MU_M3_PER_S2
                                 * (2.0 / state.radius_m
                                    - 1.0 / el.semi_major_axis_m))
            assert state.speed_m_per_s == pytest.approx(expected, rel=1e-9)


class TestEcefPropagation:
    def test_ecef_radius_equals_eci_radius(self, circular_leo):
        eci = propagate_to_eci(circular_leo, 500.0)
        ecef = propagate_to_ecef(circular_leo, 500.0)
        assert ecef.radius_m == pytest.approx(eci.radius_m, rel=1e-12)

    def test_frames_agree_at_epoch(self, circular_leo):
        eci = propagate_to_eci(circular_leo, 0.0)
        ecef = propagate_to_ecef(circular_leo, 0.0)
        np.testing.assert_allclose(ecef.position_m, eci.position_m)

    def test_frames_diverge_later(self, circular_leo):
        eci = propagate_to_eci(circular_leo, 600.0)
        ecef = propagate_to_ecef(circular_leo, 600.0)
        assert np.linalg.norm(eci.position_m - ecef.position_m) > 1000.0


class TestOrbitState:
    def test_properties(self):
        state = OrbitState(position_m=np.array([3.0, 4.0, 0.0]),
                           velocity_m_per_s=np.array([0.0, 0.0, 2.0]),
                           time_s=1.0)
        assert state.radius_m == 5.0
        assert state.speed_m_per_s == 2.0
