"""Tests for the span profiler, trace export, and bench-regression tooling."""

import json

import numpy as np
import pytest

from repro.obs import spans
from repro.obs.bench import (
    DEFAULT_THRESHOLD,
    choose_metric,
    compare_trajectory,
    format_reports,
    metric_direction,
    scan_results_dir,
)
from repro.obs.spans import (
    MAIN_PID,
    NULL_PROFILER,
    NullSpanProfiler,
    SpanProfiler,
    format_phases,
    install,
    profiled,
    uninstall,
)


class FakeClock:
    """Deterministic monotonic clock: each call advances by ``tick``."""

    def __init__(self, tick: float = 1.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


def _assert_ambient_is_null():
    assert spans.ACTIVE is NULL_PROFILER
    assert not spans.ACTIVE.enabled


class TestNullProfiler:
    def test_disabled_and_noop(self):
        profiler = NullSpanProfiler()
        assert profiler.enabled is False
        handle = profiler.begin("anything")
        assert handle == -1
        profiler.end(handle)  # must not raise
        with profiler.span("scoped"):
            pass

    def test_ambient_default_is_null(self):
        _assert_ambient_is_null()


class TestSpanProfiler:
    def test_nesting_and_parents(self):
        profiler = SpanProfiler(clock=FakeClock())
        outer = profiler.begin("outer")
        inner = profiler.begin("inner")
        profiler.end(inner)
        profiler.end(outer)
        records = profiler.records()
        assert [r.name for r in records] == ["outer", "inner"]
        assert records[0].parent == -1
        assert records[1].parent == 0
        assert records[1].duration_s > 0
        # Inner is fully enclosed in outer.
        assert records[0].start_s < records[1].start_s
        assert records[1].end_s < records[0].end_s

    def test_end_unwinds_abandoned_spans(self):
        # A span abandoned by an exception is closed when its enclosing
        # handle closes — innermost first, all with the same end time.
        clock = FakeClock()
        profiler = SpanProfiler(clock=clock)
        outer = profiler.begin("outer")
        profiler.begin("leaked")
        profiler.end(outer)
        records = profiler.records()
        assert all(r.duration_s > 0 for r in records)
        assert records[0].end_s == records[1].end_s

    def test_end_unknown_handle_rejected(self):
        profiler = SpanProfiler(clock=FakeClock())
        handle = profiler.begin("only")
        profiler.end(handle)
        with pytest.raises(ValueError):
            profiler.end(handle)

    def test_capacity_bounds_and_counts_dropped(self):
        profiler = SpanProfiler(capacity=2, clock=FakeClock())
        first = profiler.begin("a")
        second = profiler.begin("b")
        third = profiler.begin("c")
        assert third == -1
        assert profiler.dropped == 1
        profiler.end(third)  # no-op
        profiler.end(second)
        profiler.end(first)
        assert profiler.num_spans == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanProfiler(capacity=0)

    def test_span_context_manager_closes_on_exception(self):
        profiler = SpanProfiler(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with profiler.span("doomed"):
                raise RuntimeError("boom")
        (record,) = profiler.records()
        assert record.duration_s > 0


class TestAmbientInstall:
    def test_install_uninstall_round_trip(self):
        _assert_ambient_is_null()
        profiler = install()
        try:
            assert spans.ACTIVE is profiler
            assert profiler.enabled
        finally:
            previous = uninstall()
        assert previous is profiler
        _assert_ambient_is_null()

    def test_profiled_restores_previous_even_on_error(self):
        _assert_ambient_is_null()
        with pytest.raises(RuntimeError):
            with profiled() as profiler:
                assert spans.ACTIVE is profiler
                raise RuntimeError("boom")
        _assert_ambient_is_null()

    def test_profiled_nested_restores_outer(self):
        with profiled() as outer:
            with profiled() as inner:
                assert spans.ACTIVE is inner
            assert spans.ACTIVE is outer
        _assert_ambient_is_null()


class TestPhaseSummary:
    def test_self_time_excludes_children(self):
        clock = FakeClock(tick=1.0)
        profiler = SpanProfiler(clock=clock)
        outer = profiler.begin("solve")      # start 1
        inner = profiler.begin("kernel")     # start 2
        profiler.end(inner)                  # end 3
        profiler.end(outer)                  # end 4
        summary = profiler.phase_summary()
        by_name = {p["name"]: p for p in summary["phases"]}
        assert summary["num_spans"] == 2
        assert by_name["solve"]["total_s"] == pytest.approx(3.0)
        assert by_name["kernel"]["total_s"] == pytest.approx(1.0)
        assert by_name["solve"]["self_s"] == pytest.approx(2.0)
        assert by_name["kernel"]["self_s"] == pytest.approx(1.0)

    def test_sorted_by_descending_self_time(self):
        clock = FakeClock(tick=1.0)
        profiler = SpanProfiler(clock=clock)
        short = profiler.begin("short")
        profiler.end(short)
        long = profiler.begin("long")
        clock.now += 10.0
        profiler.end(long)
        names = [p["name"] for p in profiler.phase_summary()["phases"]]
        assert names == ["long", "short"]

    def test_aggregates_adopted_children(self):
        parent = SpanProfiler(clock=FakeClock())
        child = SpanProfiler(label="worker", clock=FakeClock())
        handle = child.begin("sweep.compute")
        child.end(handle)
        parent.adopt(child.as_dict(), chunk_index=0)
        summary = parent.phase_summary()
        assert summary["num_spans"] == 1
        assert summary["phases"][0]["name"] == "sweep.compute"

    def test_format_phases_lines(self):
        profiler = SpanProfiler(clock=FakeClock())
        handle = profiler.begin("solve")
        profiler.end(handle)
        lines = format_phases(profiler.phase_summary())
        assert "top phases" in lines[0]
        assert any("solve" in line for line in lines[1:])


def _assert_trace_event_schema(document):
    """Satellite contract: every event carries ph/ts/pid/tid/name."""
    assert isinstance(document["traceEvents"], list)
    for event in document["traceEvents"]:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in event, f"event {event} lacks {key!r}"
        assert event["ph"] in ("X", "M")
        assert isinstance(event["ts"], (int, float))


class TestChromeTrace:
    def test_schema_and_process_metadata(self):
        parent = SpanProfiler(clock=FakeClock())
        handle = parent.begin("fluid.run")
        parent.end(handle)
        child = SpanProfiler(label="sweep worker 0", clock=FakeClock())
        chunk = child.begin("sweep.chunk")
        child.end(chunk)
        parent.adopt(child.as_dict(), chunk_index=0,
                     snapshot_start=0, snapshot_stop=5)
        document = parent.chrome_trace(metadata={"provenance": {"x": 1}})
        _assert_trace_event_schema(document)
        # Synthetic pids: parent is MAIN_PID, first child MAIN_PID + 1.
        pids = {event["pid"] for event in document["traceEvents"]}
        assert pids == {MAIN_PID, MAIN_PID + 1}
        # Process names carry the chunk's snapshot bounds.
        names = [event["args"]["name"]
                 for event in document["traceEvents"]
                 if event["ph"] == "M"]
        assert any("[snapshots 0:5)" in name for name in names)
        # Real OS pids appear only in metadata, never in events.
        processes = document["metadata"]["processes"]
        assert all("os_pid" in process for process in processes)
        assert processes[1]["chunk_index"] == 0
        assert document["metadata"]["provenance"] == {"x": 1}

    def test_write_round_trips_as_json(self, tmp_path):
        profiler = SpanProfiler(clock=FakeClock())
        handle = profiler.begin("solve")
        profiler.end(handle)
        path = tmp_path / "trace.json"
        count = profiler.write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        assert count == len(document["traceEvents"]) == 2
        _assert_trace_event_schema(document)

    def test_open_span_exports_zero_duration(self):
        profiler = SpanProfiler(clock=FakeClock())
        profiler.begin("never-closed")
        (event,) = [e for e in profiler.chrome_trace()["traceEvents"]
                    if e["ph"] == "X"]
        assert event["dur"] == 0.0


def _span_key_set(document):
    """The deterministic identity of a trace: events minus wall-times."""
    return sorted((event["name"], event["ph"], event["pid"], event["tid"])
                  for event in document["traceEvents"])


class TestSweepProfileMerge:
    def test_parallel_merge_is_deterministic(self, small_network):
        # Two profiled workers=2 sweeps of the same scenario must export
        # the identical span set (only ts/dur may differ) — acceptance
        # criterion of the profiling tentpole.
        from repro.sweep import NetworkSpec, sweep_timelines

        spec = NetworkSpec.from_network(small_network)
        times = np.array([0.0, 5.0, 10.0, 15.0])
        documents = []
        for _ in range(2):
            with profiled() as profiler:
                result = sweep_timelines(spec, [(0, 1)], times, workers=2)
            assert result[(0, 1)].times_s.shape == (4,)
            documents.append(profiler.chrome_trace())
        _assert_trace_event_schema(documents[0])
        assert _span_key_set(documents[0]) == _span_key_set(documents[1])
        # One process row per worker chunk plus the parent.
        pids = {event["pid"] for event in documents[0]["traceEvents"]}
        assert pids == {MAIN_PID, MAIN_PID + 1, MAIN_PID + 2}
        # Worker spans were adopted with chunk identity.
        processes = documents[0]["metadata"]["processes"]
        assert [p.get("chunk_index") for p in processes] == [None, 0, 1]
        assert processes[1]["snapshot_start"] == 0
        assert processes[2]["snapshot_stop"] == 4

    def test_serial_sweep_records_on_ambient_profiler(self, small_network):
        from repro.sweep import NetworkSpec, sweep_timelines

        spec = NetworkSpec.from_network(small_network)
        with profiled() as profiler:
            sweep_timelines(spec, [(0, 1)], np.array([0.0, 5.0]), workers=1)
        names = {record.name for record in profiler.records()}
        assert {"sweep.chunk", "sweep.build", "sweep.compute"} <= names


class TestBenchRegression:
    def test_metric_direction(self):
        assert metric_direction("vectorized_solve_s") == "lower"
        assert metric_direction("wall_s") == "lower"
        assert metric_direction("speedup") == "higher"
        assert metric_direction("events_per_s") == "higher"

    def test_choose_metric_prefers_wall_time_over_rate(self):
        records = [{"speedup": 20.0, "vectorized_solve_s": 0.14}]
        assert choose_metric(records) == "vectorized_solve_s"

    def test_routing_trajectory_gates_on_wall_time(self):
        # The bench-routing trajectory: the per-snapshot repair wall
        # time is the headline (regression-gating) metric, not the
        # noisier scratch/incremental speedup ratio.
        records = [
            {"incremental_snapshot_s": 0.010, "speedup": 8.0},
            {"incremental_snapshot_s": 0.020, "speedup": 9.0},
        ]
        assert choose_metric(records) == "incremental_snapshot_s"
        report = compare_trajectory(
            "results/BENCH_routing_incremental.json", records)
        assert report.direction == "lower"
        assert report.regressed  # 2x the rolling best

    def test_choose_metric_explicit_and_fallback(self):
        records = [{"custom_s": 1.0, "other": "text"}]
        assert choose_metric(records, metric="custom_s") == "custom_s"
        assert choose_metric(records) == "custom_s"  # *_s fallback
        assert choose_metric([{"note": "hi"}]) is None

    def test_regression_flagged_against_rolling_best(self):
        records = [{"wall_s": 1.0}, {"wall_s": 2.0}, {"wall_s": 1.5}]
        report = compare_trajectory("results/BENCH_x.json", records)
        assert report.metric == "wall_s"
        assert report.best == 1.0  # rolling best, not previous record
        assert report.regressed
        assert report.status == "REGRESSED"

    def test_within_threshold_is_ok(self):
        records = [{"wall_s": 1.0}, {"wall_s": 1.15}]
        report = compare_trajectory("BENCH_y.json", records)
        assert not report.regressed
        assert report.status == "ok"
        assert report.name == "y"

    def test_higher_better_regression(self):
        records = [{"events_per_s": 100.0}, {"events_per_s": 50.0}]
        report = compare_trajectory("BENCH_z.json", records)
        assert report.direction == "higher"
        assert report.regressed

    def test_single_record_has_no_baseline(self):
        report = compare_trajectory("BENCH_a.json", [{"wall_s": 1.0}])
        assert not report.regressed
        assert "no baseline" in report.status

    def test_scan_and_format(self, tmp_path):
        good = [{"wall_s": 1.0}, {"wall_s": 1.01}]
        bad = [{"wall_s": 1.0}, {"wall_s": 9.0}]
        (tmp_path / "BENCH_good.json").write_text(json.dumps(good))
        (tmp_path / "BENCH_bad.json").write_text(json.dumps(bad))
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        reports = scan_results_dir(str(tmp_path))
        by_name = {report.name: report for report in reports}
        assert not by_name["good"].regressed
        assert by_name["bad"].regressed
        assert "unreadable" in by_name["BENCH_broken.json"].status
        lines = format_reports(reports, threshold=DEFAULT_THRESHOLD)
        assert any("REGRESSED" in line for line in lines)
        assert any("lower is better" in line for line in lines)


class TestCli:
    def test_bench_report_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "BENCH_t.json").write_text(
            json.dumps([{"wall_s": 1.0}, {"wall_s": 1.05}]))
        assert main(["bench-report", "--results-dir", str(tmp_path)]) == 0
        (tmp_path / "BENCH_t.json").write_text(
            json.dumps([{"wall_s": 1.0}, {"wall_s": 1.5}]))
        assert main(["bench-report", "--results-dir", str(tmp_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_report_empty_dir_is_ok(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench-report", "--results-dir", str(tmp_path)]) == 0
        assert "no BENCH_*.json trajectories" in capsys.readouterr().out

    def test_profile_command_exports_trace_report_metrics(self, tmp_path,
                                                          capsys):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        metrics = tmp_path / "metrics.json"
        code = main(["profile", "S1", "New York", "London",
                     "--engine", "maxmin", "--duration", "4",
                     "--step", "2", "-o", str(trace),
                     "--report-out", str(report),
                     "--metrics-out", str(metrics)])
        assert code == 0
        _assert_ambient_is_null()  # profiler must not leak past the run
        document = json.loads(trace.read_text())
        _assert_trace_event_schema(document)
        names = {event["name"] for event in document["traceEvents"]}
        assert "fluid.run" in names
        assert "routing.route_to_many" in names
        # Satellite: provenance header in the run report.
        payload = json.loads(report.read_text())
        provenance = payload["provenance"]
        assert provenance["engine"] == "maxmin"
        assert provenance["kernel"] == "vectorized"
        assert provenance["shell"] == "S1"
        assert provenance["duration_s"] == 4.0
        # Satellite: phases section folded into the report.
        assert payload["phases"]["num_spans"] > 0
        # Satellite: --metrics-out dumps the registry.
        dumped = json.loads(metrics.read_text())
        assert "counters" in dumped and "series" in dumped
        out = capsys.readouterr().out
        assert "top phases" in out
        assert "provenance:" in out
