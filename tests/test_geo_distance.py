"""Tests for distance and latency primitives."""

import math

import numpy as np
import pytest

from repro.geo.constants import (
    EARTH_MEAN_RADIUS_M,
    FIBER_REFRACTIVE_SLOWDOWN,
    SPEED_OF_LIGHT_M_PER_S,
)
from repro.geo.coordinates import GeodeticPosition
from repro.geo.distance import (
    central_angle_rad,
    geodesic_rtt_s,
    great_circle_distance_m,
    propagation_delay_s,
    straight_line_distance_m,
)


class TestStraightLineDistance:
    def test_simple(self):
        assert straight_line_distance_m([0, 0, 0], [3, 4, 0]) == 5.0

    def test_zero(self):
        assert straight_line_distance_m([1, 2, 3], [1, 2, 3]) == 0.0

    def test_symmetric(self):
        a, b = np.array([1e6, 2e6, 3e6]), np.array([-1e6, 0.0, 7e6])
        assert straight_line_distance_m(a, b) == \
            straight_line_distance_m(b, a)


class TestCentralAngle:
    def test_same_point(self):
        p = GeodeticPosition(10.0, 20.0)
        assert central_angle_rad(p, p) == 0.0

    def test_antipodal(self):
        a = GeodeticPosition(0.0, 0.0)
        b = GeodeticPosition(0.0, 180.0)
        assert central_angle_rad(a, b) == pytest.approx(math.pi)

    def test_quarter_circle_along_equator(self):
        a = GeodeticPosition(0.0, 0.0)
        b = GeodeticPosition(0.0, 90.0)
        assert central_angle_rad(a, b) == pytest.approx(math.pi / 2)

    def test_pole_to_equator(self):
        a = GeodeticPosition(90.0, 0.0)
        b = GeodeticPosition(0.0, 123.0)  # longitude irrelevant from pole
        assert central_angle_rad(a, b) == pytest.approx(math.pi / 2)

    def test_symmetric(self):
        a = GeodeticPosition(48.86, 2.35)
        b = GeodeticPosition(-8.84, 13.23)
        assert central_angle_rad(a, b) == central_angle_rad(b, a)


class TestGreatCircleDistance:
    def test_paris_to_luanda_known_distance(self):
        # Paris - Luanda is roughly 6,500 km along the surface.
        paris = GeodeticPosition(48.86, 2.35)
        luanda = GeodeticPosition(-8.84, 13.23)
        distance = great_circle_distance_m(paris, luanda)
        assert 6_200_000 < distance < 6_800_000

    def test_custom_radius(self):
        a = GeodeticPosition(0.0, 0.0)
        b = GeodeticPosition(0.0, 180.0)
        assert great_circle_distance_m(a, b, radius_m=1.0) == \
            pytest.approx(math.pi)


class TestPropagationDelay:
    def test_light_travels_300km_in_a_millisecond(self):
        assert propagation_delay_s(299_792.458) == pytest.approx(1e-3)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_s(-1.0)

    def test_custom_speed(self):
        fiber_speed = SPEED_OF_LIGHT_M_PER_S / FIBER_REFRACTIVE_SLOWDOWN
        assert propagation_delay_s(fiber_speed, fiber_speed) == \
            pytest.approx(1.0)


class TestGeodesicRtt:
    def test_antipodal_rtt_is_about_133ms(self):
        # Half circumference ~20,015 km each way -> RTT ~133.5 ms.
        a = GeodeticPosition(0.0, 0.0)
        b = GeodeticPosition(0.0, 180.0)
        rtt = geodesic_rtt_s(a, b)
        assert rtt == pytest.approx(
            2 * math.pi * EARTH_MEAN_RADIUS_M / SPEED_OF_LIGHT_M_PER_S,
            rel=1e-12)
        assert 0.130 < rtt < 0.137

    def test_nearby_points_have_tiny_rtt(self):
        a = GeodeticPosition(40.0, -74.0)
        b = GeodeticPosition(40.1, -74.1)
        assert geodesic_rtt_s(a, b) < 1e-3

    def test_lower_bound_property(self):
        # Any same-endpoint straight-line RTT through space is longer than
        # the geodesic RTT only when the path leaves the surface chord...
        # at minimum, geodesic RTT must exceed the chord RTT.
        from repro.geo.coordinates import geodetic_to_ecef
        a = GeodeticPosition(41.01, 28.98)
        b = GeodeticPosition(-1.29, 36.82)
        chord = straight_line_distance_m(geodetic_to_ecef(a),
                                         geodetic_to_ecef(b))
        chord_rtt = 2 * chord / SPEED_OF_LIGHT_M_PER_S
        assert geodesic_rtt_s(a, b) >= chord_rtt
